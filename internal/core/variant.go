package core

import (
	"errors"
	"fmt"

	"smvx/internal/obs"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/image"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// clonedSections lists the image sections replicated into each follower
// window (Figure 5: shift and clone).
var clonedSections = []string{
	image.SecText, image.SecRodata, image.SecData, image.SecBSS,
	image.SecPLT, image.SecGotPLT,
}

// leaderHeapBase returns the base of the leader's heap region.
func (mo *Monitor) leaderHeapBase() mem.Addr {
	base, _ := mo.lib.HeapBounds(0)
	return base
}

// Start implements machine.MVX: the mvx_start() call. It resolves the
// protected function from the profile, tears down any previous followers,
// clones the image and heap into every follower slot's window, relocates
// pointers, and launches the follower variant threads.
func (mo *Monitor) Start(t *machine.Thread, fn string, args ...uint64) error {
	mo.mu.Lock()
	if !mo.setup {
		mo.mu.Unlock()
		return ErrNotSetup
	}
	if mo.session != nil {
		mo.mu.Unlock()
		return ErrRegionActive
	}
	mo.mu.Unlock()

	// Resolve the protected function name through the profile's symbol
	// table, as mvx_start does with the /tmp profile file (Section 3.2).
	if _, ok := mo.profile.Lookup(fn); !ok {
		return fmt.Errorf("smvx: mvx_start: function %q not in profile", fn)
	}
	if _, ok := mo.img.Lookup(fn); !ok {
		return fmt.Errorf("smvx: mvx_start: function %q not in image", fn)
	}

	// Containment gate: after a policy detach the affected slots are down.
	// PolicyRestartFollower re-clones the whole set here — at region
	// entry, where variant creation is already paid for — while the budget
	// and backoff allow; with every slot down and no restart available the
	// region runs leader-only; with only some slots down the up slots keep
	// lockstep and the down ones stay quarantined.
	restarted := false
	upSlot := make([]bool, mo.numFollowers())
	for i := range upSlot {
		upSlot[i] = true
	}
	if mo.contain() {
		mo.mu.Lock()
		down := append([]bool(nil), mo.slotDown...)
		used := mo.restartsUsed
		nextAt := mo.nextRestartAt
		mo.mu.Unlock()
		anyDown, allDown := false, true
		for _, d := range down {
			anyDown = anyDown || d
			allDown = allDown && d
		}
		if anyDown {
			canRestart := mo.opts.Policy == PolicyRestartFollower &&
				used < mo.opts.RestartBudget && mo.m.Counter().Cycles() >= nextAt
			switch {
			case canRestart:
				mo.mu.Lock()
				mo.restartsUsed++
				for i := range mo.slotDown {
					mo.slotDown[i] = false
				}
				mo.degraded = false
				mo.mu.Unlock()
				restarted = true
			case allDown:
				return mo.startLeaderOnly(t, fn)
			default:
				for i, d := range down {
					if d {
						upSlot[i] = false
					}
				}
			}
		}
	}

	delta := mo.opts.Delta
	as := mo.m.AddressSpace()
	ctr := mo.m.Counter()
	var stats CreationStats
	mo.rec.Record(obs.EvRegionStart, obs.VariantLeader, t.TID(), fn, 0, 0, 0)
	// End-to-end mvx_start span (variant.create.cycles); the Table 2 phase
	// sum is observed separately as variant.creation.cycles below.
	createSpan := mo.rec.BeginVariantCreateSpan(t.TID(), fn)

	upDeltas := make([]int64, 0, mo.numFollowers())
	for k := 1; k <= mo.numFollowers(); k++ {
		if upSlot[k-1] {
			upDeltas = append(upDeltas, delta*int64(k))
		}
	}

	mo.mu.Lock()
	reuse := mo.opts.ReuseVariant && mo.variantReady
	mo.mu.Unlock()

	var newBases []mem.Addr
	if reuse {
		// Section 5 mitigation: the followers' mappings persist across
		// regions; only their contents are refreshed and re-scanned, off
		// the critical path (charged to total CPU, not wall time). Fresh
		// stacks are still needed per region.
		mo.destroyStacks()
		mo.mu.Lock()
		newBases = append([]mem.Addr{}, mo.followerBases...)
		mo.mu.Unlock()

		wall := as.GetWallCounter()
		as.SetWallCounter(nil)
		err := mo.refreshVariant(upDeltas, &stats)
		as.SetWallCounter(wall)
		if err != nil {
			return err
		}
	} else {
		// Reclaim any previous mappings before recreating from scratch.
		mo.destroyFollower()

		// Step 1 — process duplication: clone every image section plus
		// the heap into each slot's shifted window ("copy+move" in
		// Table 2).
		mark := ctr.Cycles()
		heapBase, heapSize := mo.lib.HeapBounds(0)
		for k := 1; k <= mo.numFollowers(); k++ {
			if !upSlot[k-1] {
				continue
			}
			dk := delta * int64(k)
			for _, secName := range clonedSections {
				sec, ok := mo.img.Section(secName)
				if !ok {
					continue
				}
				clone, err := as.CloneRegionShifted(sec.Addr, dk, fmt.Sprintf("v%d:%s", k+1, secName))
				if err != nil {
					return fmt.Errorf("smvx: clone %s: %w", secName, err)
				}
				newBases = append(newBases, clone.Base)
				// Variant separation: each slot's regions carry that slot's
				// own key.
				if sec.Perm&mem.PermWrite != 0 {
					if err := as.SetRegionKey(clone.Base, mo.pkeyFollowers[k-1]); err != nil {
						return err
					}
				}
			}
			if heapSize > 0 {
				clone, err := as.CloneRegionShifted(heapBase, dk, fmt.Sprintf("v%d:heap", k+1))
				if err != nil {
					return fmt.Errorf("smvx: clone heap: %w", err)
				}
				newBases = append(newBases, clone.Base)
				if err := as.SetRegionKey(clone.Base, mo.pkeyFollowers[k-1]); err != nil {
					return err
				}
				if err := mo.lib.CloneHeap(0, dk, dk); err != nil {
					return fmt.Errorf("smvx: clone heap metadata: %w", err)
				}
			}
		}
		// Tag the leader's writable regions with the leader key so a
		// follower access through a stale pointer faults.
		for _, secName := range []string{image.SecData, image.SecBSS, image.SecGotPLT} {
			if sec, ok := mo.img.Section(secName); ok {
				if err := as.SetRegionKey(sec.Addr, mo.pkeyLeader); err != nil {
					return err
				}
			}
		}
		if heapSize > 0 {
			if err := as.SetRegionKey(heapBase, mo.pkeyLeader); err != nil {
				return err
			}
		}
		stats.DupCycles = ctr.Cycles() - mark

		// Step 2 — .data/.bss pointer relocation, per slot window. With
		// static hints (the alias-analysis narrowing of Section 3.4) only
		// the hinted globals' slots are scanned; otherwise the whole
		// sections are.
		mark = ctr.Cycles()
		for _, dk := range upDeltas {
			relocated, err := mo.relocateDataPointers(dk)
			if err != nil {
				return err
			}
			stats.PointersRelocated += relocated
		}
		stats.DataScanCycles = ctr.Cycles() - mark

		// Step 3 — heap pointer scan: every 8-byte-aligned slot up to the
		// allocation watermark (the dominant cost in Table 2), per window.
		mark = ctr.Cycles()
		if heapSize > 0 {
			for _, dk := range upDeltas {
				lo := mem.Addr(int64(heapBase) + dk)
				hi := mem.Addr(int64(mo.lib.HeapWatermark(0)) + dk)
				n, err := mo.relocateRange(lo, hi, dk)
				if err != nil {
					return err
				}
				stats.PointersRelocated += n
			}
		}
		stats.HeapScanCycles = ctr.Cycles() - mark
	}

	// Step 4 — clone() each follower thread and redirect it to the
	// protected function.
	s := newSession(mo, fn, delta, t.TID())
	s.restarted = restarted
	launched := make([]*followerSlot, 0, len(s.slots))
	for i, sl := range s.slots {
		if !upSlot[i] {
			// The slot stays quarantined this region: born detached and
			// dead so the rendezvous paths skip it.
			sl := sl
			sl.detachOnce.Do(func() { close(sl.detachCh) })
			sl.markDead(nil)
			continue
		}
		sl.tid = mo.m.AllocTID()
		launched = append(launched, sl)
	}

	mo.mu.Lock()
	mo.session = s
	mo.curRegion.Store(s.lr)
	mo.lastCreation = stats // clone cycles patched below
	mo.followerBases = append([]mem.Addr{}, newBases...)
	mo.variantReady = true
	mo.mu.Unlock()

	// The leader's PKRU now excludes every follower key.
	t.WRPKRU(mo.appPKRU(t))

	heapLo := mo.leaderHeapBase()
	heapHi := mo.lib.HeapWatermark(0)

	// Entry checkpoint: the follower clones are fully built but not yet
	// launched, so this is the region's one guaranteed quiescent anchor.
	// Strict mode re-captures at rendezvous cadence; pipelined mode only at
	// barriers — a region that diverges before any barrier rewinds here.
	if mo.snapshotDue(s) {
		mo.captureCheckpoint(s, t, nil, fn, 0)
	}

	cloneMark := ctr.Cycles()
	for _, sl := range launched {
		sl := sl
		dk := sl.delta
		ftid := sl.tid
		tname := "smvx-follower"
		if sl.id > 1 {
			tname = fmt.Sprintf("smvx-follower%d", sl.id)
		}
		fStackBase := mem.Addr(int64(mo.img.End())+dk) + 0x100_0000
		imgLo := mem.Addr(int64(mo.img.Base) + dk)
		imgHi := mem.Addr(int64(mo.img.End()) + dk)
		// Rebase pointer-looking arguments into this slot's window: the
		// protected function's argument variables (Listing 1) may point
		// into the leader's image or heap, and each follower must see its
		// own copy — the same address-range treatment the special
		// emulation category applies to epoll_data (Section 3.3).
		fargs := make([]uint64, len(args))
		for i, a := range args {
			v := mem.Addr(a)
			if (v >= mo.img.Base && v < mo.img.End()) ||
				(heapLo != 0 && v >= heapLo && v < heapHi) {
				fargs[i] = uint64(int64(a) + dk)
			} else {
				fargs[i] = a
			}
		}
		th := mo.m.Process().CloneThread(func() error {
			ft, err := mo.m.NewThreadAt(tname, ftid, fStackBase, followerStackPages, dk)
			if err != nil {
				err = fmt.Errorf("smvx: follower thread: %w", err)
				mo.raiseAlarm(Alarm{
					Reason: AlarmFollowerFault, Function: fn,
					Variant: VariantID(sl.id), Detail: err.Error(),
				})
				sl.markDead(err)
				return err
			}
			mo.mu.Lock()
			mo.followerStacks = append(mo.followerStacks, ft.StackBase())
			mo.mu.Unlock()
			if err := mo.m.AddressSpace().SetRegionKey(ft.StackBase(), mo.pkeyFollowers[sl.id-1]); err != nil {
				sl.markDead(err)
				return err
			}
			// The follower's view: only its own window is executable. The
			// leader's gadget addresses are "otherwise unmapped" here
			// (Section 4.2).
			ft.SetBackground(true)
			ft.SetExecWindow([2]mem.Addr{imgLo, imgHi})
			ft.WRPKRU(mo.appPKRU(ft))
			runErr := ft.Run(func(t *machine.Thread) { t.Call(fn, fargs...) })
			if runErr != nil && !errors.Is(runErr, ErrDetached) {
				// The fault is detected on the follower's own goroutine: the
				// leader is still running, so only the follower's thread state
				// may be read here. An ErrDetached death is just the policy
				// winding a severed follower down — no new alarm.
				var snaps []obs.ThreadSnapshot
				if mo.rec != nil {
					var fe *mem.FaultError
					if errors.As(runErr, &fe) {
						mo.rec.Record(obs.EvPageFault, obs.FollowerVariant(sl.id), ft.TID(),
							fe.Kind.String(), uint64(fe.Addr), 0, 0)
					}
					snaps = []obs.ThreadSnapshot{mo.snapshot("follower", ft)}
				}
				mo.raiseAlarm(Alarm{
					Reason: AlarmFollowerFault, CallIndex: s.calls.Load(),
					Function: fn, Variant: VariantID(sl.id), Detail: runErr.Error(),
				}, snaps...)
				if mo.contain() {
					mo.detachFollower(s, sl, "follower-fault")
				}
			}
			sl.markDead(runErr)
			return runErr
		})
		sl.thread = th
	}
	if d := mo.opts.RendezvousDeadline; d > 0 {
		go s.watch(d)
	}
	cloneCost := ctr.Cycles() - cloneMark
	if floor := mo.m.Costs().ThreadClone * clock.Cycles(len(launched)); cloneCost < floor {
		cloneCost = floor
	}

	mo.mu.Lock()
	mo.lastCreation.CloneCycles = cloneCost
	stats = mo.lastCreation
	mo.mu.Unlock()

	if rec := mo.rec; rec != nil {
		// The Table 2 phase breakdown of this mvx_start().
		for _, ph := range []struct {
			name   string
			cycles clock.Cycles
		}{
			{"dup", stats.DupCycles},
			{"data_scan", stats.DataScanCycles},
			{"heap_scan", stats.HeapScanCycles},
			{"clone", stats.CloneCycles},
		} {
			rec.Record(obs.EvVariantPhase, obs.VariantLeader, t.TID(), ph.name, uint64(ph.cycles), 0, 0)
		}
		m := rec.Metrics()
		m.Observe("variant.creation.cycles", uint64(stats.Total()))
		m.Add("variant.pointers_relocated", uint64(stats.PointersRelocated))
	}
	createSpan.End(uint64(stats.PointersRelocated))
	if restarted && len(launched) > 0 {
		mo.mu.Lock()
		n := mo.restartsUsed
		mo.mu.Unlock()
		mo.rec.Record(obs.EvFollowerRestarted, obs.VariantFollower, launched[0].tid, fn, uint64(n), 0, 0)
		mo.rec.Metrics().Inc("policy.follower_restarted")
	}
	return nil
}

// startLeaderOnly opens a degraded protected region with no followers: the
// policy detached (or could not yet restart) every other variant, so the
// leader runs single-variant — dMVX's detached mode. No clone work happens
// and lockstep calls go straight to libc. EvRegionStart carries Arg0=1 to
// mark the degraded entry.
func (mo *Monitor) startLeaderOnly(t *machine.Thread, fn string) error {
	s := newSession(mo, fn, mo.opts.Delta, t.TID())
	s.leaderOnly = true
	for _, sl := range s.slots {
		sl := sl
		sl.detachOnce.Do(func() { close(sl.detachCh) })
		sl.markDead(nil)
	}
	mo.mu.Lock()
	mo.session = s
	mo.curRegion.Store(s.lr)
	mo.mu.Unlock()
	t.WRPKRU(mo.appPKRU(t))
	mo.rec.Record(obs.EvRegionStart, obs.VariantLeader, t.TID(), fn, 1, 0, 0)
	mo.rec.Metrics().Inc("region.leader_only")
	return nil
}

// relocateDataPointers scans a follower window's .data and .bss clones and
// rebases pointers into leader ranges.
func (mo *Monitor) relocateDataPointers(delta int64) (int, error) {
	total := 0
	if len(mo.opts.ScanHints) > 0 {
		// Static-analysis narrowing: scan only the hinted globals.
		for _, name := range mo.opts.ScanHints {
			sym, ok := mo.img.Lookup(name)
			if !ok {
				continue
			}
			lo := mem.Addr(int64(sym.Addr) + delta)
			hi := lo + mem.Addr(sym.Size)
			n, err := mo.relocateRange(lo, hi, delta)
			if err != nil {
				return total, err
			}
			total += n
		}
		return total, nil
	}
	for _, secName := range []string{image.SecData, image.SecBSS} {
		sec, ok := mo.img.Section(secName)
		if !ok {
			continue
		}
		lo := mem.Addr(int64(sec.Addr) + delta)
		hi := lo + mem.Addr(sec.Size)
		n, err := mo.relocateRange(lo, hi, delta)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// relocateRange rebases every pointer-looking slot in [lo, hi) whose value
// falls inside the leader's image or heap.
func (mo *Monitor) relocateRange(lo, hi mem.Addr, delta int64) (int, error) {
	as := mo.m.AddressSpace()
	imgLo, imgHi := mo.img.Base, mo.img.End()
	heapLo := mo.leaderHeapBase()
	heapHi := mo.lib.HeapWatermark(0)
	hits := as.ScanPointers(lo, hi, func(v mem.Addr) bool {
		if v >= imgLo && v < imgHi {
			return true
		}
		return heapLo != 0 && v >= heapLo && v < heapHi
	})
	for _, h := range hits {
		nv := uint64(int64(h.Value) + delta)
		if err := as.Write64(h.Slot, nv); err != nil {
			return 0, fmt.Errorf("smvx: relocate %s: %w", h.Slot, err)
		}
	}
	return len(hits), nil
}

// End implements machine.MVX: the mvx_end() call. It waits for each
// follower via the wait() syscall — bounded by the rendezvous deadline, so
// a follower that never exits the region trips the watchdog instead of
// deadlocking mvx_end — merges the variants, records the region report, and
// leaves the followers' mappings in place (they are reclaimed by the next
// Start or by DestroyFollower).
func (mo *Monitor) End(t *machine.Thread) error {
	mo.mu.Lock()
	s := mo.session
	mo.mu.Unlock()
	if s == nil {
		return ErrNoRegion
	}
	close(s.leaderDone)
	var followerErr error
	for _, sl := range s.slots {
		if sl.thread == nil {
			continue
		}
		done := mo.m.Process().WaitThreadCh(sl.thread)
		waitStart := mo.m.Counter().Cycles()
		s.waitingSince.Store(int64(waitStart) + 1)
		// Non-blocking pre-check: once timedOut has closed (an earlier slot
		// blew the deadline), the select below picks ready cases at random —
		// a slot that already finished must not be charged with a fresh
		// region-exit timeout.
		finished := false
		select {
		case <-done:
			finished = true
		default:
		}
		if !finished {
			select {
			case <-done:
				finished = true
			case <-s.timedOut:
			}
		}
		s.waitingSince.Store(0)
		var serr error
		if finished {
			serr = sl.err
		} else {
			if !sl.detached() {
				mo.raiseAlarm(Alarm{
					Reason: AlarmRendezvousTimeout, CallIndex: s.calls.Load(), Function: s.fn,
					Variant: VariantID(sl.id),
					Detail:  "follower failed to exit the region before the rendezvous deadline",
				})
				s.diverged.Store(true)
				mo.rec.Metrics().Inc("rendezvous.timeout")
			}
			mo.detachFollower(s, sl, "region-exit-timeout")
			serr = ErrRendezvousTimeout
		}
		if followerErr == nil && serr != nil {
			followerErr = serr
		}
	}
	s.stopWatch()
	// A pipelined follower that left the region early strands unverified
	// leader records on its ring — a sequence divergence even when nothing
	// faulted (strict mode reaches the same verdict via the slot's death at
	// the leader's next call).
	if s.pipelined {
		for _, sl := range s.slots {
			if len(sl.ring) > 0 {
				s.diverged.Store(true)
			}
		}
	}

	// Rollback recovery runs here — the severed followers have wound down,
	// the watchdog is stopped, and the leader is the only thread touching
	// the address space, so the in-place restore cannot race a variant.
	outcome := mo.maybeRollback(s, t.TID(), s.diverged.Load() || followerErr != nil)

	anyDetached := false
	for _, sl := range s.slots {
		if sl.detached() {
			anyDetached = true
		}
	}
	report := RegionReport{
		Function:          s.fn,
		LibcCalls:         s.calls.Load(),
		EmulatedBytes:     s.emulatedBytes.Load(),
		Diverged:          s.diverged.Load() || followerErr != nil,
		FollowerErr:       followerErr,
		Degraded:          s.leaderOnly || anyDetached,
		FollowerRestarted: s.restarted,
		RolledBack:        outcome == rollbackDone,
	}

	mo.mu.Lock()
	if !s.leaderOnly {
		report.Creation = mo.lastCreation
	}
	mo.regionCalls[s.fn] += report.LibcCalls
	mo.reports = append(mo.reports, report)
	mo.session = nil
	mo.curRegion.Store(nil)
	mo.mu.Unlock()

	if rec := mo.rec; rec != nil {
		rec.Record(obs.EvRegionEnd, obs.VariantLeader, t.TID(), s.fn, report.LibcCalls, 0, 0)
		m := rec.Metrics()
		m.Observe("region.libc_calls", report.LibcCalls)
		m.Add("region.emulated_bytes", report.EmulatedBytes)
		m.SetGauge("rss_kb", float64(mo.m.AddressSpace().ResidentKB()))
		if report.Degraded {
			m.Inc("region.degraded")
		}
		if report.RolledBack {
			m.Inc("region.rolled_back")
		}
	}
	if report.RolledBack {
		// Advisory, not fatal: the caller's thread is healthy, but any
		// external state tied to the undone region (an accepted connection
		// mid-request) must be discarded by whoever holds it.
		return machine.ErrRegionRolledBack
	}
	return nil
}

// Invoke implements machine.MVX: one protected region end-to-end —
// mvx_start, the guarded call, mvx_end. Unlike the raw Start/Call/End
// sequence, Invoke arms the region for a mid-flight monitor abort: under
// PolicyRollback a region whose followers have died is unwound back to this
// boundary at the leader's next rendezvous (see maybeAbortRegion) instead
// of running compromised to completion, and End's rollback restores the
// checkpoint before the caller resumes. Every other policy behaves exactly
// as the raw sequence. A Start failure degrades to an unprotected call,
// matching the evaluation applications' historical mvx_start handling.
func (mo *Monitor) Invoke(t *machine.Thread, fn string, args ...uint64) (uint64, error) {
	if err := mo.Start(t, fn, args...); err != nil {
		return t.Call(fn, args...), nil
	}
	mo.mu.Lock()
	if s := mo.session; s != nil {
		s.abortable = true
	}
	mo.mu.Unlock()
	ret, abort := t.CallGuarded(fn, args...)
	err := mo.End(t)
	if abort != nil && mo.rec != nil {
		mo.rec.Record(obs.EvRegionAbort, obs.VariantLeader, t.TID(), fn, 0, 0, 0)
	}
	return ret, err
}

// DestroyFollower unmaps every follower variant's regions and drops their
// heaps, releasing the replicated RSS.
func (mo *Monitor) DestroyFollower() {
	mo.destroyFollower()
}

func (mo *Monitor) destroyFollower() {
	mo.destroyStacks()
	mo.mu.Lock()
	bases := mo.followerBases
	mo.followerBases = nil
	mo.variantReady = false
	mo.mu.Unlock()
	as := mo.m.AddressSpace()
	for _, b := range bases {
		_ = as.Unmap(b)
	}
	for k := 1; k <= mo.numFollowers(); k++ {
		mo.lib.DropHeap(mo.opts.Delta * int64(k))
	}
}

// destroyStacks unmaps the followers' stack regions (a fresh stack is
// created per region even under variant reuse).
func (mo *Monitor) destroyStacks() {
	mo.mu.Lock()
	stacks := mo.followerStacks
	mo.followerStacks = nil
	mo.mu.Unlock()
	as := mo.m.AddressSpace()
	for _, b := range stacks {
		_ = as.Unmap(b)
	}
}

// refreshVariant re-copies the leader's current state into the persistent
// follower mappings at each window shift in deltas and re-relocates
// pointers — the reuse path.
func (mo *Monitor) refreshVariant(deltas []int64, stats *CreationStats) error {
	as := mo.m.AddressSpace()
	ctr := mo.m.Counter()

	mark := ctr.Cycles()
	heapBase, heapSize := mo.lib.HeapBounds(0)
	for _, delta := range deltas {
		for _, secName := range clonedSections {
			sec, ok := mo.img.Section(secName)
			if !ok {
				continue
			}
			if err := as.RefreshClone(sec.Addr, delta); err != nil {
				return fmt.Errorf("smvx: refresh %s: %w", secName, err)
			}
		}
		if heapSize > 0 {
			if err := as.RefreshClone(heapBase, delta); err != nil {
				return fmt.Errorf("smvx: refresh heap: %w", err)
			}
			if err := mo.lib.CloneHeap(0, delta, delta); err != nil {
				return err
			}
		}
	}
	stats.DupCycles = ctr.Cycles() - mark

	mark = ctr.Cycles()
	for _, delta := range deltas {
		relocated, err := mo.relocateDataPointers(delta)
		if err != nil {
			return err
		}
		stats.PointersRelocated += relocated
	}
	stats.DataScanCycles = ctr.Cycles() - mark

	mark = ctr.Cycles()
	if heapSize > 0 {
		for _, delta := range deltas {
			lo := mem.Addr(int64(heapBase) + delta)
			hi := mem.Addr(int64(mo.lib.HeapWatermark(0)) + delta)
			n, err := mo.relocateRange(lo, hi, delta)
			if err != nil {
				return err
			}
			stats.PointersRelocated += n
		}
	}
	stats.HeapScanCycles = ctr.Cycles() - mark
	return nil
}
