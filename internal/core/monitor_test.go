package core

import (
	"errors"
	"strings"
	"testing"

	"smvx/internal/boot"
	"smvx/internal/libc"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/image"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// testApp builds a small instrumented application with a protected region.
func testApp(t *testing.T) (*boot.Env, *Monitor) {
	t.Helper()
	img := image.NewBuilder("testapp", 0x400000).
		AddFunc("main", 128).
		AddFunc("protected_func", 512).
		AddFunc("diverge_call", 128).
		AddFunc("diverge_arg", 128).
		AddFunc("hijack_func", 256).
		AddFunc("stale_ptr_func", 128).
		AddData("g_leader_time", 8, nil).
		AddData("g_follower_time", 8, nil).
		AddData("g_ptr", 8, nil).
		AddData("g_hidden", 8, nil).
		AddData("g_data_target", 64, []byte("target")).
		AddBSS("g_buf", 4096).
		NeedLibc(libc.Names()...).
		Build()
	prog := machine.NewProgram(img)
	env, err := boot.NewEnv(kernel.New(clock.DefaultCosts(), 11), prog, boot.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	mon := New(env.Machine, env.LibC, WithSeed(11))
	return env, mon
}

func TestSetupRequiresProfile(t *testing.T) {
	img := image.NewBuilder("noprofile", 0x400000).AddFunc("main", 64).NeedLibc("write").Build()
	prog := machine.NewProgram(img)
	env, err := boot.NewEnv(kernel.New(clock.DefaultCosts(), 1), prog, boot.WithoutProfile())
	if err != nil {
		t.Fatal(err)
	}
	mon := New(env.Machine, env.LibC)
	if err := mon.Setup(); !errors.Is(err, ErrNoProfile) {
		t.Errorf("Setup without profile = %v, want ErrNoProfile", err)
	}
}

func TestSetupPatchesPLTAndHidesTrampoline(t *testing.T) {
	env, mon := testApp(t)
	if err := mon.Setup(); err != nil {
		t.Fatal(err)
	}
	// Every GOT slot now points into the trampoline page.
	for i := range env.Img.PLTSlots() {
		v, err := env.AS.Read64(env.Img.GOTSlotAddr(i))
		if err != nil {
			t.Fatal(err)
		}
		if mem.Addr(v) < mon.TrampolineBase() || mem.Addr(v) >= mon.TrampolineBase()+mem.PageSize {
			t.Errorf("got slot %d = %#x, not in trampoline page %s", i, v, mon.TrampolineBase())
		}
	}
	// The trampoline is execute-only: reads fault (XoM), fetch succeeds.
	if err := env.AS.ReadAt(mon.TrampolineBase(), make([]byte, 8)); err == nil {
		t.Error("trampoline page must be execute-only (XoM)")
	}
	if err := env.AS.CheckExec(mon.TrampolineBase()); err != nil {
		t.Errorf("trampoline must remain executable: %v", err)
	}
	// Setup is idempotent.
	if err := mon.Setup(); err != nil {
		t.Errorf("second Setup: %v", err)
	}
}

func TestTrampolineRandomized(t *testing.T) {
	_, mon1 := testApp(t)
	if err := mon1.Setup(); err != nil {
		t.Fatal(err)
	}
	img := image.NewBuilder("testapp", 0x400000).AddFunc("main", 64).NeedLibc("write").Build()
	prog := machine.NewProgram(img)
	env2, _ := boot.NewEnv(kernel.New(clock.DefaultCosts(), 2), prog)
	mon2 := New(env2.Machine, env2.LibC, WithSeed(999))
	if err := mon2.Setup(); err != nil {
		t.Fatal(err)
	}
	if mon1.TrampolineBase() == mon2.TrampolineBase() {
		t.Error("trampoline location must be randomized across seeds")
	}
}

func TestMonitorDataHiddenFromApp(t *testing.T) {
	env, mon := testApp(t)
	if err := mon.Setup(); err != nil {
		t.Fatal(err)
	}
	th, _ := env.Machine.NewThread("app", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	// Application PKRU must not read monitor data.
	if err := env.AS.CheckedReadAt(mon.monDataBase, make([]byte, 8), th.PKRU()); err == nil {
		t.Error("application could read monitor data despite MPK")
	}
	// Monitor PKRU can.
	if err := env.AS.CheckedReadAt(mon.monDataBase, make([]byte, 8), mon.monPKRU()); err != nil {
		t.Errorf("monitor read own data: %v", err)
	}
}

func TestStartWithoutSetupFails(t *testing.T) {
	env, mon := testApp(t)
	th, _ := env.Machine.NewThread("app", 0)
	if err := mon.Start(th, "protected_func"); !errors.Is(err, ErrNotSetup) {
		t.Errorf("Start before Setup = %v, want ErrNotSetup", err)
	}
	if err := mon.End(th); !errors.Is(err, ErrNoRegion) {
		t.Errorf("End without region = %v, want ErrNoRegion", err)
	}
}

func TestStartUnknownFunctionFails(t *testing.T) {
	env, mon := testApp(t)
	th, _ := env.Machine.NewThread("app", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(th, "no_such_func"); err == nil {
		t.Error("Start of unknown function should fail")
	}
}

// defineProtected registers the well-behaved protected function: libc calls
// from all three Table 1 categories, identical in both variants.
func defineProtected(t *testing.T, env *boot.Env) {
	t.Helper()
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		// CatRetBuf: gettimeofday — time must be emulated, not re-read.
		th.Libc("gettimeofday", uint64(g), 0)
		sec := th.Load64(g)
		if th.Bias() == 0 {
			th.Store64(th.Global("g_leader_time"), sec)
		} else {
			th.Store64(th.Global("g_follower_time"), sec)
		}
		// CatLocal: malloc/free run in each variant's own space.
		p := th.Libc("malloc", 64)
		th.Store64(mem.Addr(p), 0x1234)
		th.Libc("free", p)
		// CatRetOnly: open/write/close — leader-only execution.
		path := g + 256
		th.WriteCString(path, "/out.txt")
		fd := th.Libc("open", uint64(path), uint64(kernel.OCreat|kernel.OWronly))
		msg := g + 512
		th.WriteCString(msg, "once")
		th.Libc("write", fd, uint64(msg), 4)
		th.Libc("close", fd)
		return sec
	})
}

func TestLockstepIdenticalExecutionNoAlarm(t *testing.T) {
	env, mon := testApp(t)
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		if err := mon.Start(tt, "protected_func"); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		tt.Call("protected_func")
		if err := mon.End(tt); err != nil {
			t.Errorf("End: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("leader crashed: %v", err)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms on identical execution: %v", alarms)
	}
	reports := mon.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	rep := reports[0]
	if rep.Diverged || rep.FollowerErr != nil {
		t.Errorf("report = %+v", rep)
	}
	if rep.LibcCalls != 6 {
		t.Errorf("LibcCalls = %d, want 6", rep.LibcCalls)
	}
	// Time was emulated: both variants observed the same instant.
	lt, _ := env.AS.Read64(mustSym(t, env, "g_leader_time"))
	ftAddr := mem.Addr(int64(mustSym(t, env, "g_follower_time")) + FollowerDelta)
	ft, _ := env.AS.Read64(ftAddr)
	if lt == 0 || lt != ft {
		t.Errorf("emulated time mismatch: leader=%d follower=%d", lt, ft)
	}
	// Leader-only write: the file holds the payload exactly once.
	data, _ := env.Kernel.FS().ReadFile("/out.txt")
	if string(data) != "once" {
		t.Errorf("file = %q, want %q (leader-only write)", data, "once")
	}
}

func mustSym(t *testing.T, env *boot.Env, name string) mem.Addr {
	t.Helper()
	sym, ok := env.Img.Lookup(name)
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	return sym.Addr
}

func TestDivergentCallSequenceRaisesAlarm(t *testing.T) {
	env, mon := testApp(t)
	env.Prog.MustDefine("diverge_call", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		if th.Bias() == 0 {
			th.Libc("gettimeofday", uint64(g), 0)
		} else {
			th.Libc("time", 0) // different libc call at the same index
		}
		return 0
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	_ = th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "diverge_call")
		tt.Call("diverge_call")
		_ = mon.End(tt)
	})
	alarms := mon.Alarms()
	if len(alarms) == 0 {
		t.Fatal("no alarm on divergent call sequence")
	}
	if alarms[0].Reason != AlarmCallMismatch {
		t.Errorf("reason = %v, want AlarmCallMismatch", alarms[0].Reason)
	}
	if !strings.Contains(alarms[0].Detail, "gettimeofday") {
		t.Errorf("detail = %q", alarms[0].Detail)
	}
	if reps := mon.Reports(); len(reps) != 1 || !reps[0].Diverged {
		t.Errorf("report should record divergence: %+v", reps)
	}
}

func TestDivergentScalarArgRaisesAlarm(t *testing.T) {
	env, mon := testApp(t)
	env.Prog.MustDefine("diverge_arg", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.WriteCString(g, "/f")
		flags := uint64(kernel.OCreat | kernel.OWronly)
		if th.Bias() != 0 {
			flags = 0 // same call, different scalar argument
		}
		th.Libc("open", uint64(g), flags)
		return 0
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	_ = th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "diverge_arg")
		tt.Call("diverge_arg")
		_ = mon.End(tt)
	})
	alarms := mon.Alarms()
	if len(alarms) == 0 || alarms[0].Reason != AlarmArgMismatch {
		t.Fatalf("alarms = %v, want AlarmArgMismatch", alarms)
	}
}

func TestHijackDetectedByFollowerFault(t *testing.T) {
	env, mon := testApp(t)
	// The "payload" plants an absolute leader-space gadget address over
	// the saved return address — the same absolute value in both variants,
	// as an attacker's payload bytes would be.
	vulnSym, _ := env.Img.Lookup("hijack_func")
	gadget := findGadget(t, env, vulnSym, image.OpPopRDI)
	mkdirSlot, ok := env.Img.PLTSlot("mkdir")
	if !ok {
		t.Fatal("no mkdir PLT slot")
	}
	mkdirPLT := env.Img.PLTEntryAddr(mkdirSlot)
	strAddr := mustSym(t, env, "g_data_target") // points at "target"

	env.Prog.MustDefine("hijack_func", func(th *machine.Thread, args []uint64) uint64 {
		buf := th.Alloca(16)
		payload := make([]byte, 0, 64)
		payload = append(payload, le(0x41414141)...)
		payload = append(payload, le(0x42424242)...)
		payload = append(payload, le(uint64(gadget))...)   // pop rdi; ret
		payload = append(payload, le(uint64(strAddr))...)  // rdi = "/..." path
		payload = append(payload, le(uint64(mkdirPLT))...) // jmp mkdir@plt
		payload = append(payload, le(0)...)                // chain end
		th.WriteBytes(buf, payload)
		return 0
	})
	env.Prog.MustDefine("main", func(th *machine.Thread, args []uint64) uint64 {
		return th.Call("hijack_func")
	})

	// Give the ROP chain a real string target: point g_data_target's first
	// bytes at a path.
	_ = env.AS.WriteAt(strAddr, append([]byte("/pwned"), 0))

	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "hijack_func")
		tt.Call("main")
		_ = mon.End(tt)
	})
	// The leader's chain executes mkdir then crashes at the 0 sentinel.
	if err == nil {
		t.Error("leader should crash at chain end")
	}
	if !env.Kernel.FS().DirExists("/pwned") {
		t.Error("leader's ROP chain should have executed mkdir (exploit works on one variant)")
	}
	// The follower faulted at the leader-space gadget: alarm raised.
	var sawFault bool
	for _, a := range mon.Alarms() {
		if a.Reason == AlarmFollowerFault {
			sawFault = true
		}
	}
	if !sawFault {
		t.Errorf("no follower-fault alarm; alarms = %v", mon.Alarms())
	}
}

func findGadget(t *testing.T, env *boot.Env, sym image.Symbol, op byte) mem.Addr {
	t.Helper()
	body := make([]byte, sym.Size)
	if err := env.AS.FetchCode(sym.Addr, body); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(body); i++ {
		if body[i] == op && body[i+1] == image.OpRet {
			return sym.Addr + mem.Addr(i)
		}
	}
	t.Fatalf("no gadget %#x;ret in %s", op, sym.Name)
	return 0
}

func le(v uint64) []byte {
	return []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}

func TestStalePointerFaultsInFollower(t *testing.T) {
	env, mon := testApp(t)
	// Hide a leader-space pointer from the scanner by storing it XORed;
	// the follower decodes and dereferences it, hitting leader memory.
	target := mustSym(t, env, "g_data_target")
	const mask = 0xA5A5A5A5A5A5A5A5
	env.Prog.MustDefine("stale_ptr_func", func(th *machine.Thread, args []uint64) uint64 {
		hidden := th.Global("g_hidden")
		if th.Load64(hidden) == 0 {
			th.Store64(hidden, uint64(target)^mask)
		}
		ptr := mem.Addr(th.Load64(hidden) ^ mask)
		return th.Load64(ptr) // follower: pkey fault on leader .data
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	// Prime g_hidden before the region so the clone carries it.
	err := th.Run(func(tt *machine.Thread) {
		tt.Call("stale_ptr_func")
		_ = mon.Start(tt, "stale_ptr_func")
		tt.Call("stale_ptr_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatalf("leader must not crash: %v", err)
	}
	var sawFault bool
	for _, a := range mon.Alarms() {
		if a.Reason == AlarmFollowerFault && strings.Contains(a.Detail, "pkey") {
			sawFault = true
		}
	}
	if !sawFault {
		t.Errorf("expected follower pkey fault on stale pointer; alarms = %v", mon.Alarms())
	}
}

func TestPointerRelocationInDataAndHeap(t *testing.T) {
	env, mon := testApp(t)
	target := mustSym(t, env, "g_data_target")
	gptr := mustSym(t, env, "g_ptr")

	var heapBlock mem.Addr
	env.Prog.MustDefine("main", func(th *machine.Thread, args []uint64) uint64 {
		// A global pointing at a global (in .data).
		th.Store64(th.Global("g_ptr"), uint64(target))
		// A heap block holding a pointer to the image.
		p := mem.Addr(th.Libc("malloc", 64))
		heapBlock = p
		th.Store64(p, uint64(target))
		return 0
	})
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		return 0
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		tt.Call("main")
		if err := mon.Start(tt, "protected_func"); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		tt.Call("protected_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := mon.LastCreation()
	if stats.PointersRelocated < 2 {
		t.Errorf("PointersRelocated = %d, want >= 2", stats.PointersRelocated)
	}
	// The follower's .data slot was rebased.
	v, err := env.AS.Read64(mem.Addr(int64(gptr) + FollowerDelta))
	if err != nil {
		t.Fatal(err)
	}
	if mem.Addr(v) != mem.Addr(int64(target)+FollowerDelta) {
		t.Errorf("relocated g_ptr = %#x, want %#x", v, int64(target)+FollowerDelta)
	}
	// The follower's heap slot was rebased too.
	hv, err := env.AS.Read64(mem.Addr(int64(heapBlock) + FollowerDelta))
	if err != nil {
		t.Fatal(err)
	}
	if mem.Addr(hv) != mem.Addr(int64(target)+FollowerDelta) {
		t.Errorf("relocated heap ptr = %#x", hv)
	}
	// Table 2 shape: heap scan dominates data scan; clone is cheap.
	if stats.HeapScanCycles == 0 || stats.DataScanCycles == 0 {
		t.Error("scan cycle accounting missing")
	}
	if stats.CloneCycles < env.Costs.ThreadClone {
		t.Errorf("CloneCycles = %d", stats.CloneCycles)
	}
}

func TestRSSGrowsWithFollowerAndShrinksOnDestroy(t *testing.T) {
	env, mon := testApp(t)
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	before := env.ResidentKB()
	err := th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "protected_func")
		tt.Call("protected_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	during := env.ResidentKB()
	if during <= before {
		t.Errorf("RSS with follower (%dKB) should exceed vanilla (%dKB)", during, before)
	}
	// Selective replication: the follower's share is well under a full 2x.
	if during >= before*2 {
		t.Errorf("follower RSS share too large: %dKB -> %dKB", before, during)
	}
	mon.DestroyFollower()
	after := env.ResidentKB()
	if after >= during {
		t.Errorf("DestroyFollower did not release memory: %dKB -> %dKB", during, after)
	}
}

func TestRepeatedRegionsReuseWindow(t *testing.T) {
	env, mon := testApp(t)
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		for i := 0; i < 3; i++ {
			if err := mon.Start(tt, "protected_func"); err != nil {
				t.Errorf("Start #%d: %v", i, err)
				return
			}
			tt.Call("protected_func")
			if err := mon.End(tt); err != nil {
				t.Errorf("End #%d: %v", i, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms across repeated regions: %v", alarms)
	}
	if got := mon.RegionLibcCalls()["protected_func"]; got != 18 {
		t.Errorf("RegionLibcCalls = %d, want 18 (3 regions x 6 calls)", got)
	}
	if len(mon.Reports()) != 3 {
		t.Errorf("reports = %d, want 3", len(mon.Reports()))
	}
}

func TestNestedStartRejected(t *testing.T) {
	env, mon := testApp(t)
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	_ = th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "protected_func")
		if err := mon.Start(tt, "protected_func"); !errors.Is(err, ErrRegionActive) {
			t.Errorf("nested Start = %v, want ErrRegionActive", err)
		}
		tt.Call("protected_func")
		_ = mon.End(tt)
	})
}

func TestScanHintsNarrowDataScan(t *testing.T) {
	// With hints, only the hinted global is scanned: cheaper, and pointers
	// outside the hinted slots stay stale.
	env, _ := testApp(t)
	mon := New(env.Machine, env.LibC, WithSeed(11), WithScanHints("g_ptr"))
	target := mustSym(t, env, "g_data_target")

	env.Prog.MustDefine("main", func(th *machine.Thread, args []uint64) uint64 {
		th.Store64(th.Global("g_ptr"), uint64(target))
		th.Store64(th.Global("g_hidden"), uint64(target)) // not hinted
		return 0
	})
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 { return 0 })
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		tt.Call("main")
		_ = mon.Start(tt, "protected_func")
		tt.Call("protected_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	gptr := mustSym(t, env, "g_ptr")
	v, _ := env.AS.Read64(mem.Addr(int64(gptr) + FollowerDelta))
	if mem.Addr(v) != mem.Addr(int64(target)+FollowerDelta) {
		t.Error("hinted global not relocated")
	}
	gh := mustSym(t, env, "g_hidden")
	hv, _ := env.AS.Read64(mem.Addr(int64(gh) + FollowerDelta))
	if mem.Addr(hv) != target {
		t.Error("unhinted global should remain stale under hint-narrowed scan")
	}
}

func TestAlarmReasonStrings(t *testing.T) {
	// Exhaustive: every declared reason maps to its exact rendering, and the
	// table below must grow with the enum (the count check fails otherwise).
	want := map[AlarmReason]string{
		AlarmCallMismatch:      "libc call sequence mismatch",
		AlarmArgMismatch:       "libc argument mismatch",
		AlarmFollowerFault:     "follower variant fault",
		AlarmSequenceLength:    "libc call count mismatch",
		AlarmRendezvousTimeout: "rendezvous deadline exceeded",
		AlarmEmulationFault:    "follower emulation-buffer fault",
		AlarmOutvoted:          "variant outvoted",
	}
	seen := map[string]bool{}
	for r, s := range want {
		if got := r.String(); got != s {
			t.Errorf("AlarmReason(%d).String() = %q, want %q", r, got, s)
		}
		if seen[s] {
			t.Errorf("duplicate reason string %q", s)
		}
		seen[s] = true
	}
	// Walk the enum from the first declared value until String falls off the
	// table: every named reason must be covered above.
	n := 0
	for r := AlarmCallMismatch; r.String() != "unknown"; r++ {
		n++
	}
	if n != len(want) {
		t.Errorf("enum has %d named reasons, table covers %d", n, len(want))
	}
	if AlarmReason(99).String() != "unknown" {
		t.Error("out-of-range reason should stringify as unknown")
	}
}

func TestCustomDeltaAndNoPivot(t *testing.T) {
	// A non-default follower window and a pivot-less trampoline still
	// yield correct lockstep.
	env, _ := testApp(t)
	const delta = int64(0x1000_0000_0000)
	mon := New(env.Machine, env.LibC, WithSeed(11), WithDelta(delta), WithoutSafeStack())
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		if err := mon.Start(tt, "protected_func"); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		tt.Call("protected_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms: %v", alarms)
	}
	// The follower's writes landed in the custom window.
	ft := mem.Addr(int64(mustSym(t, env, "g_follower_time")) + delta)
	v, err := env.AS.Read64(ft)
	if err != nil || v == 0 {
		t.Errorf("follower state at custom delta: %v %v", v, err)
	}
}
