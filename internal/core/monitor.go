// Package core implements the sMVX monitor — the paper's primary
// contribution: multi-variant execution on selected code paths, driven by
// an in-process monitor isolated with Intel MPK.
//
// The monitor is "loaded" into the target process the way the paper's
// LD_PRELOAD constructor is: Setup (the setup_mvx() equivalent) reads the
// binary's profile file from the /tmp filesystem, maps the trampoline
// (execute-only, at a randomized address) and the monitor's MPK-protected
// data and safe-stack regions, and patches every .got.plt slot so all libc
// calls detour through the trampoline (Section 3.4, Figure 4).
//
// mvx_start() clones the protected image into a non-overlapping address
// window (shift-and-clone, Figure 5), relocates stale pointers by combining
// static hints with an 8-byte-aligned memory scan, and launches the
// follower variant on a cloned thread. Until mvx_end(), leader and follower
// run in lockstep at libc-call granularity over a shared-memory IPC
// channel, with the three emulation categories of Table 1. Any divergence —
// different call names, different scalar arguments, a follower fault —
// raises an alarm (Section 3.3, Section 4.2).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"smvx/internal/libc"
	"smvx/internal/obs"
	"smvx/internal/obs/ledger"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/image"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
	"smvx/internal/sim/mpk"
)

// Sentinel errors callers match with errors.Is.
var (
	// ErrNoProfile is returned by Setup when the binary's profile file is
	// missing from /tmp (the paper requires running the profile script
	// before launching the application under sMVX).
	ErrNoProfile = errors.New("smvx: profile file not found; run the profile extraction first")
	// ErrNotSetup is returned by Start before Setup/Init have run.
	ErrNotSetup = errors.New("smvx: monitor not set up")
	// ErrRegionActive is returned by Start when a protected region is
	// already executing.
	ErrRegionActive = errors.New("smvx: protected region already active")
	// ErrNoRegion is returned by End without a matching Start.
	ErrNoRegion = errors.New("smvx: no active protected region")
	// ErrDivergence is the abort delivered to a variant when lockstep
	// comparison fails.
	ErrDivergence = errors.New("smvx: variant execution diverged")
	// ErrDetached is the abort delivered to a follower the divergence
	// policy has severed from lockstep: not a new divergence, just the
	// containment path winding the quarantined variant down.
	ErrDetached = errors.New("smvx: follower detached by divergence policy")
	// ErrRendezvousTimeout reports a follower that failed to reach a
	// rendezvous (or the region exit) before the virtual-cycle deadline.
	ErrRendezvousTimeout = errors.New("smvx: rendezvous deadline exceeded")
)

// FollowerDelta is the default shift between the leader's and the first
// follower's address windows — large enough that no leader region can
// collide with its clone. Follower slot k sits at k*FollowerDelta.
const FollowerDelta int64 = 0x2000_0000_0000

// VariantID is the dense per-variant index (0 = leader, k = follower slot
// k), shared with the observability plane.
type VariantID = obs.VariantID

// Variant-set sizing.
const (
	// DefaultVariants is the total variant count (leader included) when no
	// WithVariants option is given — the paper's leader/follower pair.
	DefaultVariants = 2
	// MaxVariants bounds the variant set: the leader plus obs.MaxFollowers
	// follower slots (the MPK key space caps the follower windows).
	MaxVariants = 1 + obs.MaxFollowers
)

// followerStackPages is the follower variant's stack size.
const followerStackPages = 16

// safeStackPages is the per-thread trampoline safe-stack size.
const safeStackPages = 4

// AlarmReason classifies a raised alarm.
type AlarmReason int

// Alarm reasons.
const (
	// AlarmCallMismatch: the variants issued different libc calls at the
	// same lockstep index.
	AlarmCallMismatch AlarmReason = iota + 1
	// AlarmArgMismatch: same call, different non-pointer argument values.
	AlarmArgMismatch
	// AlarmFollowerFault: the follower variant crashed (e.g. jumped to a
	// gadget address that is unmapped in its view).
	AlarmFollowerFault
	// AlarmSequenceLength: one variant issued more libc calls than the
	// other inside the region.
	AlarmSequenceLength
	// AlarmRendezvousTimeout: the follower failed to arrive at a lockstep
	// rendezvous (or the region exit) before the virtual-cycle deadline —
	// a hung, stalled, or wedged variant caught by the watchdog instead of
	// deadlocking the machine.
	AlarmRendezvousTimeout
	// AlarmEmulationFault: the leader→follower result copy of a CatRetBuf
	// call failed because the follower's destination buffer is unmapped or
	// otherwise unwritable — a corrupt follower buffer, previously folded
	// into generic divergence.
	AlarmEmulationFault
	// AlarmOutvoted: at an N-variant rendezvous the named variant's ballot
	// disagreed with the majority. The Variant field names the loser; a
	// losing leader (variant 0) means the majority of followers agreed
	// with each other against the leader's call.
	AlarmOutvoted
)

// String names the alarm reason.
func (r AlarmReason) String() string {
	switch r {
	case AlarmCallMismatch:
		return "libc call sequence mismatch"
	case AlarmArgMismatch:
		return "libc argument mismatch"
	case AlarmFollowerFault:
		return "follower variant fault"
	case AlarmSequenceLength:
		return "libc call count mismatch"
	case AlarmRendezvousTimeout:
		return "rendezvous deadline exceeded"
	case AlarmEmulationFault:
		return "follower emulation-buffer fault"
	case AlarmOutvoted:
		return "variant outvoted"
	default:
		return "unknown"
	}
}

// Alarm is one detected divergence — the MVX engine "throwing a fault and
// alarming the monitor system" (Section 4.2).
type Alarm struct {
	// Reason classifies the divergence.
	Reason AlarmReason
	// CallIndex is the lockstep call index at which it was detected.
	CallIndex uint64
	// TS is the virtual-clock time at which the alarm fired.
	TS clock.Cycles
	// Function is the protected root function of the active region, if any.
	Function string
	// LeaderCall and FollowerCall name the libc calls the variants issued
	// at the diverging rendezvous (empty when not applicable, e.g. a
	// follower fault outside a rendezvous).
	LeaderCall, FollowerCall string
	// Detail is a human-readable description.
	Detail string
	// Variant is the dense index of the variant the alarm is about: 0 for
	// the leader, k for the k-th follower slot. Pair-era alarms always
	// name follower slot 1.
	Variant VariantID
	// Handled reports whether a containment policy (leader-continue or
	// restart-follower) absorbed the divergence: the leader kept running
	// single-variant instead of the paper's kill-both response. Unhandled
	// alarms make cmd/smvx exit nonzero.
	Handled bool
}

// CreationStats is the Table 2 breakdown of one mvx_start() invocation.
type CreationStats struct {
	// DupCycles is process duplication (copy+move of resident pages).
	DupCycles clock.Cycles
	// DataScanCycles is the .data/.bss pointer scan.
	DataScanCycles clock.Cycles
	// HeapScanCycles is the heap pointer scan.
	HeapScanCycles clock.Cycles
	// CloneCycles is the clone() thread-creation cost.
	CloneCycles clock.Cycles
	// PointersRelocated counts patched pointer slots.
	PointersRelocated int
}

// Total returns the full mvx_start cost.
func (s CreationStats) Total() clock.Cycles {
	return s.DupCycles + s.DataScanCycles + s.HeapScanCycles + s.CloneCycles
}

// RegionReport summarizes one protected-region execution, returned by End.
type RegionReport struct {
	// Function is the protected root function.
	Function string
	// LibcCalls is the number of libc calls the leader issued inside the
	// region (the Figure 8 metric).
	LibcCalls uint64
	// EmulatedBytes is the volume copied leader→follower over the IPC.
	EmulatedBytes uint64
	// Diverged reports whether any alarm fired in this region.
	Diverged bool
	// FollowerErr is the follower's crash, if it crashed.
	FollowerErr error
	// Creation is the variant-creation breakdown.
	Creation CreationStats
	// Degraded reports that the region ran (entirely or partly) without a
	// live follower: either the policy detached it mid-region, or the
	// region started leader-only after an earlier detach.
	Degraded bool
	// FollowerRestarted reports that PolicyRestartFollower re-cloned a
	// fresh follower at this region's entry.
	FollowerRestarted bool
	// RolledBack reports that PolicyRollback restored both variants to
	// the last checkpoint and replayed the redo tail at this region's
	// exit; the next region re-arms full lockstep.
	RolledBack bool
}

// Options configures the monitor.
type Options struct {
	// Delta is the follower window shift (default FollowerDelta); follower
	// slot k is shifted by k*Delta.
	Delta int64
	// Variants is the total variant count, leader included (default
	// DefaultVariants; clamped to [2, MaxVariants]). N-1 follower slots
	// are cloned at each region entry and every rendezvous becomes a
	// majority vote once more than one follower is attached.
	Variants int
	// Seed drives trampoline address randomization.
	Seed int64
	// ScanHints, when non-nil, narrows the .data/.bss pointer scan to the
	// named globals — the static (alias) analysis of Section 3.4. Nil
	// means scan everything (the strawman); the ablation benchmark
	// compares both.
	ScanHints []string
	// DisableSafeStack turns off the trampoline stack pivot (ablation;
	// the paper's design always pivots).
	DisableSafeStack bool
	// ReuseVariant keeps the follower's mappings across protected regions
	// and refreshes their contents off the critical path — the
	// "pre-scanning and pre-updating" mitigation the paper's Section 5
	// proposes for variant creation inside control loops.
	ReuseVariant bool
	// Recorder, when non-nil, receives trace events, metrics, and alarm
	// forensics from the monitor. Nil (the default) keeps every hot path
	// free of observability work.
	Recorder *obs.Recorder
	// Policy selects the divergence response (default PolicyKillBoth, the
	// paper's behaviour).
	Policy DivergencePolicy
	// RestartBudget bounds how many times PolicyRestartFollower re-clones
	// a follower before degrading to leader-continue (default
	// DefaultRestartBudget).
	RestartBudget int
	// RestartBackoff is the virtual-cycle delay after a detach before a
	// restart is attempted (default DefaultRestartBackoff).
	RestartBackoff clock.Cycles
	// RendezvousDeadline is the virtual-cycle budget for one lockstep wait
	// (and for the region-exit wait on the follower). Zero disables the
	// deadline; the default is DefaultRendezvousDeadline, generous enough
	// that only a wedged variant trips it.
	RendezvousDeadline clock.Cycles
	// Lockstep selects the rendezvous discipline: LockstepStrict (paper
	// default, stop-and-wait at every libc call) or LockstepPipelined
	// (bounded run-ahead over the rendezvous ring with drain-time
	// verification).
	Lockstep LockstepMode
	// LagWindow bounds the leader's run-ahead under LockstepPipelined:
	// the rendezvous ring holds at most this many unverified call records
	// (default DefaultLagWindow, clamped to >= 1). Ignored under
	// LockstepStrict.
	LagWindow int
	// Ledger, when non-nil, receives per-call phase-level cost accounting
	// (trampoline, marshal, rendezvous, wait, compare, emulate, drain,
	// barrier, libc) from every protected-region libc call. Nil (the
	// default) keeps the hot path ledger-free.
	Ledger *ledger.Ledger
	// SnapshotInterval is PolicyRollback's checkpoint cadence in virtual
	// cycles: a copy-on-write checkpoint of both variants is captured at
	// the first quiescent rendezvous after the interval elapses (default
	// DefaultSnapshotInterval; zero disables mid-region checkpoints, so
	// only the per-region entry checkpoint is kept). Ignored under other
	// policies.
	SnapshotInterval clock.Cycles
	// RollbackBudget bounds how many consecutive rollbacks PolicyRollback
	// absorbs at the same root-cause ordinal before escalating to
	// kill-both (default DefaultRollbackBudget). A clean region resets
	// the streak.
	RollbackBudget int
}

// Option mutates Options.
type Option func(*Options)

// WithDelta overrides the follower window shift.
func WithDelta(d int64) Option { return func(o *Options) { o.Delta = d } }

// WithVariants sets the total variant count, leader included (clamped to
// [2, MaxVariants]). At the default of 2 the monitor behaves exactly as
// the paper's leader/follower pair; above 2 divergence becomes a majority
// vote across the variant set.
func WithVariants(n int) Option { return func(o *Options) { o.Variants = n } }

// WithSeed sets the randomization seed.
func WithSeed(s int64) Option { return func(o *Options) { o.Seed = s } }

// WithScanHints narrows the data-section pointer scan to named globals.
func WithScanHints(names ...string) Option {
	return func(o *Options) { o.ScanHints = names }
}

// WithoutSafeStack disables the trampoline stack pivot (ablation only).
func WithoutSafeStack() Option {
	return func(o *Options) { o.DisableSafeStack = true }
}

// WithVariantReuse keeps follower mappings across regions and refreshes
// them off the critical path (the paper's Section 5 pre-scan mitigation).
func WithVariantReuse() Option {
	return func(o *Options) { o.ReuseVariant = true }
}

// WithRecorder attaches a flight recorder to the monitor.
func WithRecorder(r *obs.Recorder) Option {
	return func(o *Options) { o.Recorder = r }
}

// WithPolicy selects the divergence-response policy.
func WithPolicy(p DivergencePolicy) Option {
	return func(o *Options) { o.Policy = p }
}

// WithRestartBudget bounds PolicyRestartFollower's re-clones.
func WithRestartBudget(n int) Option {
	return func(o *Options) { o.RestartBudget = n }
}

// WithRestartBackoff sets the virtual-cycle delay before a restart.
func WithRestartBackoff(c clock.Cycles) Option {
	return func(o *Options) { o.RestartBackoff = c }
}

// WithRendezvousDeadline sets the per-rendezvous virtual-cycle deadline
// (0 disables the watchdog).
func WithRendezvousDeadline(c clock.Cycles) Option {
	return func(o *Options) { o.RendezvousDeadline = c }
}

// WithLockstepMode selects strict or pipelined lockstep.
func WithLockstepMode(m LockstepMode) Option {
	return func(o *Options) { o.Lockstep = m }
}

// WithLagWindow bounds the pipelined leader's run-ahead to n unverified
// libc calls (clamped to >= 1; ignored under LockstepStrict).
func WithLagWindow(n int) Option {
	return func(o *Options) { o.LagWindow = n }
}

// WithLedger attaches a rendezvous cost ledger to the monitor.
func WithLedger(l *ledger.Ledger) Option {
	return func(o *Options) { o.Ledger = l }
}

// WithSnapshotInterval sets PolicyRollback's checkpoint cadence in virtual
// cycles (0 keeps only the per-region entry checkpoint).
func WithSnapshotInterval(c clock.Cycles) Option {
	return func(o *Options) { o.SnapshotInterval = c }
}

// WithRollbackBudget bounds PolicyRollback's consecutive same-ordinal
// rollbacks before escalating to kill-both.
func WithRollbackBudget(n int) Option {
	return func(o *Options) { o.RollbackBudget = n }
}

// Monitor is the in-process sMVX monitor.
type Monitor struct {
	m    *machine.Machine
	img  *image.Image
	lib  *libc.LibC
	opts Options
	rec  *obs.Recorder
	led  *ledger.Ledger

	// curRegion is the active session's ledger region, read lock-free by
	// the libc ledger hook (nil outside protected regions).
	curRegion atomic.Pointer[ledger.Region]

	profile *image.Profile

	pkeyMonitor   mpk.Key
	pkeyLeader    mpk.Key
	pkeyFollowers []mpk.Key // one key per follower slot, in slot order

	trampolineBase mem.Addr
	monDataBase    mem.Addr

	mu         sync.Mutex
	setup      bool
	safeStacks map[int]mem.Addr // tid -> safe stack top (TLS)
	nextStack  mem.Addr

	session *session

	alarms         []Alarm
	alarmHandler   func(Alarm)
	lastCreation   CreationStats
	regionCalls    map[string]uint64 // protected fn -> libc calls (Figure 8)
	followerBases  []mem.Addr        // cloned section/heap regions
	followerStacks []mem.Addr        // follower stack regions
	variantReady   bool              // clones exist and can be refreshed
	reports        []RegionReport

	// Fault-containment state (see policy.go). slotDown marks follower
	// slots detached by the policy; degraded means every slot is down and
	// regions run leader-only.
	quarantined   map[int]bool // detached follower TIDs barred from the trampoline
	slotDown      []bool       // per-slot detach flags, persistent across regions
	degraded      bool         // all follower slots down; regions run leader-only
	restartsUsed  int
	nextRestartAt clock.Cycles // earliest virtual time a restart may happen

	// Rollback state (PolicyRollback; see snapshot.go). ckpt is the last
	// captured variant checkpoint and redo the emulation-write log since
	// its capture. lastSnapAt is leader-goroutine-only (checkpoints are
	// captured inside a rendezvous). The streak fields count consecutive
	// rollbacks at the same root-cause ordinal; escalated flips once the
	// RollbackBudget is exhausted and is read lock-free by contain().
	ckpt                *VariantSnapshot
	redo                *RedoLog
	lastSnapAt          clock.Cycles
	snapshots           int
	rollbacks           int
	lastRollbackOrdinal uint64
	rollbackStreak      int
	escalated           atomic.Bool
}

var _ machine.MVX = (*Monitor)(nil)
var _ machine.Interposer = (*Monitor)(nil)

// New creates a monitor for the machine's program. The monitor installs
// itself as the machine's PLT interposer during Setup.
func New(m *machine.Machine, lib *libc.LibC, opts ...Option) *Monitor {
	o := Options{
		Delta:              FollowerDelta,
		Seed:               1,
		RestartBudget:      DefaultRestartBudget,
		RestartBackoff:     DefaultRestartBackoff,
		RendezvousDeadline: DefaultRendezvousDeadline,
		LagWindow:          DefaultLagWindow,
		SnapshotInterval:   DefaultSnapshotInterval,
		RollbackBudget:     DefaultRollbackBudget,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.RestartBudget < 0 {
		o.RestartBudget = 0
	}
	if o.LagWindow < 1 {
		o.LagWindow = 1
	}
	if o.RollbackBudget < 0 {
		o.RollbackBudget = 0
	}
	if o.Variants < DefaultVariants {
		o.Variants = DefaultVariants
	}
	if o.Variants > MaxVariants {
		o.Variants = MaxVariants
	}
	mo := &Monitor{
		m:           m,
		img:         m.Program().Image(),
		lib:         lib,
		opts:        o,
		rec:         o.Recorder,
		led:         o.Ledger,
		safeStacks:  make(map[int]mem.Addr),
		regionCalls: make(map[string]uint64),
		quarantined: make(map[int]bool),
		redo:        NewRedoLog(),
	}
	mo.slotDown = make([]bool, mo.numFollowers())
	if mo.led != nil {
		// Charge the libc dispatch itself to the ledger's libc phase. The
		// hook loads the active region lock-free; outside a region it is
		// nil and Add is a no-op.
		lib.SetLedgerHook(func(t *machine.Thread, name string, d clock.Cycles) {
			mo.curRegion.Load().Add(ledger.PhaseLibc, mo.variantOfThread(t),
				ledger.ClassOf(name), d, ledger.Mark{}, 0)
		})
	}
	return mo
}

// LockstepConfig reports the configured lockstep mode and lag window for
// the telemetry plane's health endpoint.
func (mo *Monitor) LockstepConfig() (mode string, lagWindow int) {
	return mo.opts.Lockstep.String(), mo.opts.LagWindow
}

// numFollowers is the configured follower-slot count (Variants - 1).
func (mo *Monitor) numFollowers() int { return mo.opts.Variants - 1 }

// Variants reports the configured total variant count, leader included.
func (mo *Monitor) Variants() int { return mo.opts.Variants }

// Setup is the setup_mvx() constructor: it loads the profile file, maps and
// protects the monitor's regions, and patches the PLT. It must run before
// any protected region is entered.
func (mo *Monitor) Setup() error {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if mo.setup {
		return nil
	}
	as := mo.m.AddressSpace()
	proc := mo.m.Process()

	// Read the binary profile the extraction script wrote to /tmp.
	data, e := proc.Kernel().FS().ReadFile(image.ProfilePath(mo.img.Name))
	if e != kernel.OK {
		return fmt.Errorf("%w: %s", ErrNoProfile, image.ProfilePath(mo.img.Name))
	}
	prof, err := image.ParseProfile(data)
	if err != nil {
		return fmt.Errorf("smvx: parse profile: %w", err)
	}
	mo.profile = prof

	// Allocate protection keys: one hides the monitor, one per variant to
	// separate the data views (leader plus one key per follower slot).
	alloc := mpk.NewAllocator()
	for _, dst := range []*mpk.Key{&mo.pkeyMonitor, &mo.pkeyLeader} {
		k, err := alloc.Alloc()
		if err != nil {
			return fmt.Errorf("smvx: pkey_alloc: %w", err)
		}
		*dst = k
	}
	mo.pkeyFollowers = make([]mpk.Key, mo.numFollowers())
	for i := range mo.pkeyFollowers {
		k, err := alloc.Alloc()
		if err != nil {
			return fmt.Errorf("smvx: pkey_alloc: %w", err)
		}
		mo.pkeyFollowers[i] = k
	}

	// Map the trampoline at a randomized address (code location
	// randomization, MonGuard-style) and mark it execute-only: the
	// application can jump through it but never read it to find the
	// monitor (XoM, Section 3.4).
	rng := rand.New(rand.NewSource(mo.opts.Seed))
	slot := mem.Addr(0x5500_0000_0000 + uint64(rng.Intn(1<<20))*mem.PageSize)
	tramp, err := as.Map(mem.Region{Name: "smvx:trampoline", Base: slot, Size: mem.PageSize, Perm: mem.PermRWX})
	if err != nil {
		return fmt.Errorf("smvx: map trampoline: %w", err)
	}
	// Fill with trampoline stub bytes, then flip to execute-only.
	stub := image.GenFuncBody("smvx", "trampoline", mem.PageSize)
	if err := as.WriteAt(tramp.Base, stub); err != nil {
		return err
	}
	if err := as.SetRegionPerm(tramp.Base, mem.PermExec); err != nil {
		return err
	}
	mo.trampolineBase = tramp.Base

	// Monitor data (IPC ring, bookkeeping) under the monitor key.
	monData, err := as.Map(mem.Region{
		Name: "smvx:data",
		Base: slot + 16*mem.PageSize,
		Size: 16 * mem.PageSize,
		Perm: mem.PermRW,
		Key:  mo.pkeyMonitor,
	})
	if err != nil {
		return fmt.Errorf("smvx: map monitor data: %w", err)
	}
	if err := as.Touch(monData.Base, monData.Size); err != nil {
		return err
	}
	mo.monDataBase = monData.Base
	mo.nextStack = slot + 64*mem.PageSize

	// Patch every .got.plt slot to the trampoline: from now on all libc
	// calls are under the monitor's interception.
	for i := range mo.img.PLTSlots() {
		target := mo.trampolineBase + mem.Addr(i)
		if err := as.Write64(mo.img.GOTSlotAddr(i), uint64(target)); err != nil {
			return fmt.Errorf("smvx: patch got slot %d: %w", i, err)
		}
	}
	mo.m.SetInterposer(mo)
	mo.setup = true
	return nil
}

// Init implements machine.MVX: the mvx_init() call. It runs Setup if
// needed and restricts the calling thread's PKRU so application code cannot
// touch monitor memory.
func (mo *Monitor) Init(t *machine.Thread) error {
	if err := mo.Setup(); err != nil {
		return err
	}
	t.WRPKRU(mo.appPKRU(t))
	return nil
}

// appPKRU computes the PKRU application code runs under: monitor key
// disabled, plus every other variant's key disabled once variants exist.
func (mo *Monitor) appPKRU(t *machine.Thread) mpk.PKRU {
	p := mpk.AllowAll.WithAccessDisabled(mo.pkeyMonitor, true)
	if t.Bias() == 0 {
		for _, k := range mo.pkeyFollowers {
			p = p.WithAccessDisabled(k, true)
		}
		return p
	}
	slot := int(t.Bias() / mo.opts.Delta)
	p = p.WithAccessDisabled(mo.pkeyLeader, true)
	for i, k := range mo.pkeyFollowers {
		if i != slot-1 {
			p = p.WithAccessDisabled(k, true)
		}
	}
	return p
}

// monPKRU is the PKRU inside the trampoline/monitor: everything enabled.
func (mo *Monitor) monPKRU() mpk.PKRU { return mpk.AllowAll }

// Phase reports the monitor's lifecycle phase for the telemetry plane's
// health endpoint: "init" before setup_mvx has run, "idle" between
// protected regions, "region" while a leader/follower pair is live.
func (mo *Monitor) Phase() string {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	switch {
	case !mo.setup:
		return "init"
	case mo.session == nil:
		return "idle"
	default:
		return "region"
	}
}

// FollowerLive reports whether any follower variant is currently running —
// a region is active and at least one attached follower thread has not
// terminated.
func (mo *Monitor) FollowerLive() bool {
	mo.mu.Lock()
	s := mo.session
	mo.mu.Unlock()
	if s == nil {
		return false
	}
	for _, slot := range s.slots {
		if slot.detached() {
			continue
		}
		select {
		case <-slot.dead:
		default:
			return true
		}
	}
	return false
}

// Alarms returns the divergences detected so far.
func (mo *Monitor) Alarms() []Alarm {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return append([]Alarm(nil), mo.alarms...)
}

// LastCreation returns the Table 2 breakdown of the most recent
// mvx_start().
func (mo *Monitor) LastCreation() CreationStats {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.lastCreation
}

// RegionLibcCalls returns the libc calls observed inside protected regions,
// per protected root function (Figure 8).
func (mo *Monitor) RegionLibcCalls() map[string]uint64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	out := make(map[string]uint64, len(mo.regionCalls))
	for k, v := range mo.regionCalls {
		out[k] = v
	}
	return out
}

// Reports returns the per-region reports in order.
func (mo *Monitor) Reports() []RegionReport {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return append([]RegionReport(nil), mo.reports...)
}

// TrampolineBase exposes the randomized trampoline address (tests verify
// randomization and XoM).
func (mo *Monitor) TrampolineBase() mem.Addr { return mo.trampolineBase }

// MonitorKey returns the monitor's protection key.
func (mo *Monitor) MonitorKey() mpk.Key { return mo.pkeyMonitor }

// SetAlarmHandler installs a callback invoked on every raised alarm — the
// hook a deployment wires to its intrusion-response path ("it may trigger
// an alarm if the execution outcomes of the variants diverge, signaling a
// potential attack", Section 3.2). The handler runs on the detecting
// goroutine and must not block.
func (mo *Monitor) SetAlarmHandler(fn func(Alarm)) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	mo.alarmHandler = fn
}

// raiseAlarm records a divergence, forwards it (with any thread snapshots)
// to the flight recorder, and notifies the handler. The alarm's TS is
// stamped here.
func (mo *Monitor) raiseAlarm(a Alarm, snaps ...obs.ThreadSnapshot) {
	a.TS = mo.m.Counter().Cycles()
	a.Handled = mo.contain()
	mo.mu.Lock()
	mo.alarms = append(mo.alarms, a)
	handler := mo.alarmHandler
	if s := mo.session; s != nil {
		// The region's first alarm is the rollback root cause (stored as
		// ordinal+1 so an ordinal-0 alarm still marks the slot taken).
		s.rollbackCause.CompareAndSwap(0, a.CallIndex+1)
	}
	mo.mu.Unlock()
	mo.rec.Alarm(obs.AlarmInfo{
		Reason:       a.Reason.String(),
		CallIndex:    a.CallIndex,
		Function:     a.Function,
		LeaderCall:   a.LeaderCall,
		FollowerCall: a.FollowerCall,
		Detail:       a.Detail,
		Snapshots:    snaps,
	})
	if handler != nil {
		handler(a)
	}
}

// snapshotWords is how many top-of-stack words a thread snapshot captures.
const snapshotWords = 4

// snapshot captures a thread's architectural state for the flight recorder.
// Thread state is unlocked: callers must hold a happens-before edge on t —
// either t is the calling goroutine's own thread, or t is blocked on a
// rendezvous channel the caller has received from.
func (mo *Monitor) snapshot(role string, t *machine.Thread) obs.ThreadSnapshot {
	regs := make([]uint64, 16)
	for i := range regs {
		regs[i] = t.Reg(i)
	}
	as := mo.m.AddressSpace()
	stack := make([]uint64, 0, snapshotWords)
	for i := 0; i < snapshotWords; i++ {
		v, err := as.Read64(t.SP() + mem.Addr(i*8))
		if err != nil {
			break
		}
		stack = append(stack, v)
	}
	return obs.ThreadSnapshot{
		Role:      role,
		TID:       t.TID(),
		IP:        uint64(t.IP()),
		SP:        uint64(t.SP()),
		Regs:      regs,
		Stack:     stack,
		CallStack: t.FnStack(),
	}
}

// variantOfThread labels a thread by its address-window bias: slot k's
// window sits at k*Delta.
func (mo *Monitor) variantOfThread(t *machine.Thread) obs.Variant {
	if b := t.Bias(); b != 0 {
		return obs.FollowerVariant(int(b / mo.opts.Delta))
	}
	return obs.VariantLeader
}

// safeStackFor returns (allocating on demand) the thread's trampoline safe
// stack top. Safe stacks are per-thread TLS in the monitor's address range,
// protected by the monitor key (Section 3.4).
func (mo *Monitor) safeStackFor(t *machine.Thread) mem.Addr {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if top, ok := mo.safeStacks[t.TID()]; ok {
		return top
	}
	base := mo.nextStack
	mo.nextStack += mem.Addr((safeStackPages + 1) * mem.PageSize) // +1 guard
	as := mo.m.AddressSpace()
	if _, err := as.Map(mem.Region{
		Name: fmt.Sprintf("smvx:safestack:%d", t.TID()),
		Base: base,
		Size: safeStackPages * mem.PageSize,
		Perm: mem.PermRW,
		Key:  mo.pkeyMonitor,
	}); err != nil {
		// Safe-stack exhaustion is a monitor bug; crash the thread.
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: err})
	}
	top := base + safeStackPages*mem.PageSize
	mo.safeStacks[t.TID()] = top
	return top
}
