package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestCallRecordRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		args []uint64
	}{
		{"write", []uint64{3, 0x400500, 17}},
		{"close", []uint64{0}},
		{"gettimeofday", []uint64{0xffff_ffff_ffff_ffff, 0}},
		{"malloc", nil},
		{"x", make([]uint64, maxCallArgs)},
	}
	for _, c := range cases {
		wire := encodeCallRecord(c.name, c.args)
		name, args, err := decodeCallRecord(wire)
		if err != nil {
			t.Errorf("%s: decode: %v", c.name, err)
			continue
		}
		if name != c.name || len(args) != len(c.args) {
			t.Errorf("%s: round trip = (%q, %d args)", c.name, name, len(args))
		}
		for i := range args {
			if args[i] != c.args[i] {
				t.Errorf("%s: arg %d = %#x, want %#x", c.name, i, args[i], c.args[i])
			}
		}
	}
}

func TestDecodeCallRecordRejectsCorruption(t *testing.T) {
	good := encodeCallRecord("write", []uint64{3, 0x400500, 17})
	cases := []struct {
		label string
		wire  []byte
	}{
		{"empty", nil},
		{"truncated frame", good[:len(good)-1]},
		{"trailing garbage", append(append([]byte{}, good...), 0x00)},
		{"huge name length", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
		{"name longer than payload", []byte{0x05, 'a', 'b'}},
		{"huge arg count", []byte{0x01, 'x', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00}},
		{"missing args", []byte{0x01, 'x', 0x03, 0x01}},
		{"unterminated varint", []byte{0x01, 'x', 0x01, 0xff}},
	}
	for _, c := range cases {
		if _, _, err := decodeCallRecord(c.wire); !errors.Is(err, errCorruptCallRecord) {
			t.Errorf("%s: err = %v, want errCorruptCallRecord", c.label, err)
		}
	}
	// A truncated-argument record (the IPCTruncate fault) decodes fine; the
	// divergence is caught by the argument-count comparison, not the codec.
	short := encodeCallRecord("write", []uint64{3, 0x400500})
	if _, args, err := decodeCallRecord(short); err != nil || len(args) != 2 {
		t.Errorf("truncated-args record: %d args, %v", len(args), err)
	}
}

// FuzzDecodeCallRecord is the satellite fuzz target: arbitrary bytes must
// never panic the decoder, and whatever decodes must re-encode to the exact
// same wire form (the codec has one canonical encoding).
func FuzzDecodeCallRecord(f *testing.F) {
	f.Add(encodeCallRecord("write", []uint64{3, 0x400500, 17}))
	f.Add(encodeCallRecord("gettimeofday", []uint64{0, 0}))
	f.Add(encodeCallRecord("", nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x01, 'x', 0x01, 0xff})
	f.Fuzz(func(t *testing.T, wire []byte) {
		name, args, err := decodeCallRecord(wire)
		if err != nil {
			return
		}
		if len(name) > maxCallNameLen || len(args) > maxCallArgs {
			t.Fatalf("decoder exceeded its own limits: name %d, args %d", len(name), len(args))
		}
		if re := encodeCallRecord(name, args); !bytes.Equal(re, wire) {
			t.Fatalf("non-canonical decode: %x -> (%q, %v) -> %x", wire, name, args, re)
		}
	})
}
