package core

import (
	"strings"
	"testing"

	"smvx/internal/boot"
	"smvx/internal/obs"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

func TestLockstepModeStringAndParse(t *testing.T) {
	for _, m := range []LockstepMode{LockstepStrict, LockstepPipelined} {
		got, err := ParseLockstepMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseLockstepMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseLockstepMode(""); err != nil || m != LockstepStrict {
		t.Errorf("empty mode = %v, %v; want strict", m, err)
	}
	if _, err := ParseLockstepMode("turbo"); err == nil {
		t.Error("unknown mode must not parse")
	}
	if LockstepMode(9).String() != "lockstep(9)" {
		t.Errorf("out-of-range String = %q", LockstepMode(9))
	}
}

// TestPipelinedIdenticalExecutionNoAlarm is the pipelined twin of
// TestLockstepIdenticalExecutionNoAlarm: same region, same invariants —
// emulated time identical in both variants, leader-only write exactly
// once — plus the pipelined-only metrics.
func TestPipelinedIdenticalExecutionNoAlarm(t *testing.T) {
	env, mon, rec := policyApp(t, WithLockstepMode(LockstepPipelined))
	defineProtected(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 1)
	if runErr != nil || completed != 1 {
		t.Fatalf("completed %d/1, err=%v", completed, runErr)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms on identical execution: %v", alarms)
	}
	reports := mon.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	rep := reports[0]
	if rep.Diverged || rep.FollowerErr != nil {
		t.Errorf("report = %+v", rep)
	}
	if rep.LibcCalls != 6 {
		t.Errorf("LibcCalls = %d, want 6", rep.LibcCalls)
	}
	if rep.EmulatedBytes == 0 {
		t.Error("pipelined gettimeofday should still emulate the timeval")
	}
	lt, _ := env.AS.Read64(mustSym(t, env, "g_leader_time"))
	ftAddr := mem.Addr(int64(mustSym(t, env, "g_follower_time")) + FollowerDelta)
	ft, _ := env.AS.Read64(ftAddr)
	if lt == 0 || lt != ft {
		t.Errorf("emulated time mismatch: leader=%d follower=%d", lt, ft)
	}
	data, _ := env.Kernel.FS().ReadFile("/out.txt")
	if string(data) != "once" {
		t.Errorf("file = %q, want %q (leader-only write)", data, "once")
	}
	m := rec.Metrics()
	// open/write/close are barriers; gettimeofday pipelines; malloc/free
	// ride the ring as local records.
	if n := m.Counter(obs.MetricLockstepBarrier); n != 3 {
		t.Errorf("barrier count = %d, want 3 (open/write/close)", n)
	}
	if h := m.Histogram(obs.MetricRendezvousLag); h.Count == 0 {
		t.Error("no rendezvous.lag observations in pipelined mode")
	}
	if h := m.Histogram(obs.MetricRendezvousLeaderCycles); h.Count == 0 {
		t.Error("no rendezvous.leader.cycles observations")
	}
}

// TestPipelinedBoundedRunAhead caps the lag window at 2 and checks the
// leader never publishes a record more than window+1 calls ahead of the
// drain point (the +1 is the call in flight when the ring is full).
func TestPipelinedBoundedRunAhead(t *testing.T) {
	env, mon, rec := policyApp(t, WithLockstepMode(LockstepPipelined), WithLagWindow(2))
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		for i := 0; i < 16; i++ {
			th.Libc("gettimeofday", uint64(g), 0)
			if th.Bias() != 0 {
				th.ChargeUser(5_000) // slow follower: the ring fills
			}
		}
		return 0
	})
	completed, runErr := runRegions(t, env, mon, "protected_func", 1)
	if runErr != nil || completed != 1 {
		t.Fatalf("completed %d/1, err=%v", completed, runErr)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms = %v", alarms)
	}
	h := rec.Metrics().Histogram(obs.MetricRendezvousLag)
	if h.Count == 0 {
		t.Fatal("no lag observations")
	}
	if h.Max > 3 {
		t.Errorf("run-ahead reached %d calls with lag window 2", h.Max)
	}
}

// TestPipelinedDivergenceParity runs the same diverging regions under
// strict and pipelined lockstep and requires the identical alarm
// (reason, originating call ordinal) — detection may happen M calls
// late on the ring, but attribution must not drift.
func TestPipelinedDivergenceParity(t *testing.T) {
	cases := []struct {
		name   string
		fn     string
		define func(t *testing.T, env *boot.Env)
		reason AlarmReason
	}{
		{
			// Pipelined-class call (gettimeofday) vs a different call:
			// detected at drain time in pipelined mode.
			name: "call-mismatch", fn: "diverge_call", reason: AlarmCallMismatch,
			define: func(t *testing.T, env *boot.Env) {
				env.Prog.MustDefine("diverge_call", func(th *machine.Thread, args []uint64) uint64 {
					g := th.Global("g_buf")
					th.Libc("gettimeofday", uint64(g), 0)
					if th.Bias() == 0 {
						th.Libc("gettimeofday", uint64(g), 0)
					} else {
						th.Libc("time", 0)
					}
					th.Libc("close", 0)
					return 0
				})
			},
		},
		{
			// Barrier call (open) with a flipped scalar: detected inside
			// the full rendezvous in both modes.
			name: "arg-mismatch", fn: "diverge_arg", reason: AlarmArgMismatch,
			define: func(t *testing.T, env *boot.Env) {
				env.Prog.MustDefine("diverge_arg", func(th *machine.Thread, args []uint64) uint64 {
					g := th.Global("g_buf")
					th.Libc("gettimeofday", uint64(g), 0)
					th.WriteCString(g+256, "/f")
					flags := uint64(kernel.OCreat | kernel.OWronly)
					if th.Bias() != 0 {
						flags = 0
					}
					th.Libc("open", uint64(g+256), flags)
					return 0
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type key struct {
				reason AlarmReason
				idx    uint64
			}
			got := map[LockstepMode]key{}
			for _, mode := range []LockstepMode{LockstepStrict, LockstepPipelined} {
				env, mon, _ := policyApp(t, WithLockstepMode(mode))
				tc.define(t, env)
				completed, runErr := runRegions(t, env, mon, tc.fn, 1)
				if runErr != nil || completed != 1 {
					t.Fatalf("%v: completed %d/1, err=%v", mode, completed, runErr)
				}
				var found *Alarm
				for i, a := range mon.Alarms() {
					if a.Reason == tc.reason {
						found = &mon.Alarms()[i]
						break
					}
				}
				if found == nil {
					t.Fatalf("%v: no %v alarm; alarms = %v", mode, tc.reason, mon.Alarms())
				}
				got[mode] = key{found.Reason, found.CallIndex}
				if reps := mon.Reports(); len(reps) != 1 || !reps[0].Diverged {
					t.Errorf("%v: report should record divergence: %+v", mode, reps)
				}
			}
			if got[LockstepStrict] != got[LockstepPipelined] {
				t.Errorf("alarm attribution diverged across modes: strict=%+v pipelined=%+v",
					got[LockstepStrict], got[LockstepPipelined])
			}
		})
	}
}

// TestPipelinedSequenceOverrun: the follower issuing a call after the
// leader left the region must raise AlarmSequenceLength in pipelined mode
// exactly as in strict mode.
func TestPipelinedSequenceOverrun(t *testing.T) {
	for _, mode := range []LockstepMode{LockstepStrict, LockstepPipelined} {
		t.Run(mode.String(), func(t *testing.T) {
			env, mon, _ := policyApp(t, WithLockstepMode(mode))
			env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
				g := th.Global("g_buf")
				th.Libc("gettimeofday", uint64(g), 0)
				if th.Bias() != 0 {
					th.Libc("gettimeofday", uint64(g), 0) // one call too many
				}
				return 0
			})
			completed, runErr := runRegions(t, env, mon, "protected_func", 1)
			if runErr != nil || completed != 1 {
				t.Fatalf("completed %d/1, err=%v", completed, runErr)
			}
			found := false
			for _, a := range mon.Alarms() {
				if a.Reason == AlarmSequenceLength {
					found = true
					if !strings.Contains(a.Detail, "after leader finished") {
						t.Errorf("detail = %q", a.Detail)
					}
				}
			}
			if !found {
				t.Fatalf("no AlarmSequenceLength; alarms = %v", mon.Alarms())
			}
		})
	}
}

// TestPipelinedStallAttributesOrdinal: a follower that burns past the
// rendezvous deadline mid-ring raises the timeout itself at drain time,
// attributed to the stalled call's own ordinal — not to whatever barrier
// the run-ahead leader happens to be parked on.
func TestPipelinedStallAttributesOrdinal(t *testing.T) {
	env, mon, _ := policyApp(t, WithLockstepMode(LockstepPipelined),
		WithPolicy(PolicyLeaderContinue), WithRendezvousDeadline(100_000))
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0) // ordinal 1 drains clean
		if th.Bias() != 0 {
			for i := 0; i < 50; i++ {
				th.ChargeUser(10_000) // 500k cycles >> 100k deadline
			}
		}
		th.Libc("gettimeofday", uint64(g), 0) // ordinal 2: blown deadline
		th.Libc("close", 0)
		return 0
	})
	completed, runErr := runRegions(t, env, mon, "protected_func", 2)
	if runErr != nil || completed != 2 {
		t.Fatalf("completed %d/2, err=%v", completed, runErr)
	}
	var timeout *Alarm
	for i, a := range mon.Alarms() {
		if a.Reason == AlarmRendezvousTimeout {
			timeout = &mon.Alarms()[i]
			break
		}
	}
	if timeout == nil {
		t.Fatalf("no AlarmRendezvousTimeout; alarms = %v", mon.Alarms())
	}
	if timeout.CallIndex != 2 {
		t.Errorf("timeout CallIndex = %d, want 2 (the stalled call)", timeout.CallIndex)
	}
	if !timeout.Handled {
		t.Error("timeout alarm not handled under leader-continue")
	}
	if !mon.Degraded() {
		t.Error("follower should be detached after the blown deadline")
	}
}

// TestPipelinedHungFollowerTrippedByWatchdog wedges the follower off-CPU
// before it drains anything: the leader blocks at the close barrier, the
// real-time watchdog trips, and after the grace window the leader detaches
// rather than deadlocking.
func TestPipelinedHungFollowerTrippedByWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	env, mon, _ := policyApp(t, WithLockstepMode(LockstepPipelined),
		WithPolicy(PolicyLeaderContinue), WithRendezvousDeadline(DefaultRendezvousDeadline))
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		if th.Bias() != 0 {
			<-release // hangs until test teardown: no cycles charged
		}
		th.Libc("close", 0)
		return 0
	})
	completed, runErr := runRegions(t, env, mon, "protected_func", 1)
	if runErr != nil || completed != 1 {
		t.Fatalf("completed %d/1, err=%v", completed, runErr)
	}
	found := false
	for _, a := range mon.Alarms() {
		if a.Reason == AlarmRendezvousTimeout && a.Handled {
			found = true
		}
	}
	if !found {
		t.Fatalf("no handled AlarmRendezvousTimeout; alarms = %v", mon.Alarms())
	}
	if !mon.Degraded() {
		t.Error("hung follower should be detached")
	}
}

// TestPipelinedEmulationFault: applying the leader's result snapshot into
// an unmapped follower buffer must raise AlarmEmulationFault with the
// originating ordinal, and — under kill-both — leave the region completing
// diverged without killing the follower, exactly as strict mode does.
func TestPipelinedEmulationFault(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy DivergencePolicy
	}{
		{"kill-both", PolicyKillBoth},
		{"leader-continue", PolicyLeaderContinue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, mon, _ := policyApp(t, WithLockstepMode(LockstepPipelined), WithPolicy(tc.policy))
			env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
				g := uint64(th.Global("g_buf"))
				if th.Bias() != 0 {
					g = 0x6f6f_0000_0000 // unmapped in every variant
				}
				th.Libc("gettimeofday", g, 0)
				th.Libc("close", 0)
				return 0
			})
			completed, runErr := runRegions(t, env, mon, "protected_func", 1)
			if runErr != nil || completed != 1 {
				t.Fatalf("completed %d/1, err=%v", completed, runErr)
			}
			var found *Alarm
			for i, a := range mon.Alarms() {
				if a.Reason == AlarmEmulationFault {
					found = &mon.Alarms()[i]
				}
			}
			if found == nil {
				t.Fatalf("no AlarmEmulationFault; alarms = %v", mon.Alarms())
			}
			if found.CallIndex != 1 {
				t.Errorf("CallIndex = %d, want 1 (the gettimeofday)", found.CallIndex)
			}
			if found.Handled != (tc.policy != PolicyKillBoth) {
				t.Errorf("Handled = %v under %s", found.Handled, tc.policy)
			}
		})
	}
}

// TestPipelinedContainmentPolicies: the containment spectrum holds in
// pipelined mode — a crashing follower is detached under leader-continue
// and re-cloned under restart-follower.
func TestPipelinedContainmentPolicies(t *testing.T) {
	t.Run("leader-continue", func(t *testing.T) {
		env, mon, rec := policyApp(t, WithLockstepMode(LockstepPipelined),
			WithPolicy(PolicyLeaderContinue))
		defineCrashOnce(t, env)
		completed, runErr := runRegions(t, env, mon, "protected_func", 3)
		if runErr != nil || completed != 3 {
			t.Fatalf("completed %d/3, err=%v", completed, runErr)
		}
		if mon.UnhandledAlarmCount() != 0 {
			t.Errorf("UnhandledAlarmCount = %d", mon.UnhandledAlarmCount())
		}
		if !mon.Degraded() {
			t.Error("monitor should be degraded after detach")
		}
		if n := eventCount(rec, obs.EvFollowerDetached); n != 1 {
			t.Errorf("EvFollowerDetached count = %d, want 1", n)
		}
	})
	t.Run("restart-follower", func(t *testing.T) {
		env, mon, _ := policyApp(t, WithLockstepMode(LockstepPipelined),
			WithPolicy(PolicyRestartFollower), WithRestartBudget(2), WithRestartBackoff(100))
		defineCrashOnce(t, env)
		completed, runErr := runRegions(t, env, mon, "protected_func", 3)
		if runErr != nil || completed != 3 {
			t.Fatalf("completed %d/3, err=%v", completed, runErr)
		}
		if mon.RestartsUsed() != 1 {
			t.Fatalf("RestartsUsed = %d, want 1", mon.RestartsUsed())
		}
		if mon.Degraded() {
			t.Error("monitor still degraded after successful restart")
		}
		reports := mon.Reports()
		for i := 1; i < 3; i++ {
			if reports[i].Diverged || reports[i].Degraded {
				t.Errorf("region %d = %+v, want clean lockstep", i, reports[i])
			}
		}
	})
}

// TestResultRecordCodec: the pipelined result record decodes what it
// encodes and rejects corruption without panicking.
func TestResultRecordCodec(t *testing.T) {
	bufs := []emuBuf{
		{argIdx: 0, data: []byte{1, 2, 3, 4}},
		{argIdx: 2, data: []byte("timeval bytes....")},
	}
	wire := encodeResultRecord(0x1f, kernel.Errno(11), bufs)
	ret, errno, got, err := decodeResultRecord(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0x1f || errno != 11 || len(got) != 2 {
		t.Fatalf("roundtrip = %#x, %d, %d bufs", ret, errno, len(got))
	}
	if got[0].argIdx != 0 || string(got[1].data) != "timeval bytes...." {
		t.Errorf("bufs = %+v", got)
	}
	// Truncations at every prefix length must fail cleanly, not panic.
	for i := 0; i < len(wire); i++ {
		if _, _, _, err := decodeResultRecord(wire[:i]); err == nil && i < len(wire) {
			// Short prefixes that happen to decode (e.g. ret-only frames)
			// are still rejected by the trailing-garbage check elsewhere;
			// only a full prefix may parse.
			t.Errorf("truncated record of %d bytes decoded", i)
		}
	}
	// Trailing garbage is rejected.
	if _, _, _, err := decodeResultRecord(append(append([]byte{}, wire...), 0x00)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Oversized buffer count is rejected.
	big := encodeResultRecord(0, 0, make([]emuBuf, maxResultBufs+1))
	if _, _, _, err := decodeResultRecord(big); err == nil {
		t.Error("oversized buffer count accepted")
	}
}

// TestPipelinedKillBothPreservesPaperBehaviour: under the default policy a
// pipelined divergence still aborts the follower and nothing is detached.
func TestPipelinedKillBothPreservesPaperBehaviour(t *testing.T) {
	env, mon, rec := policyApp(t, WithLockstepMode(LockstepPipelined))
	defineCrashAlways(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 2)
	if runErr != nil || completed != 2 {
		t.Fatalf("completed %d/2, err=%v", completed, runErr)
	}
	if mon.Degraded() || mon.RestartsUsed() != 0 {
		t.Errorf("kill-both mutated policy state: degraded=%v restarts=%d",
			mon.Degraded(), mon.RestartsUsed())
	}
	if n := eventCount(rec, obs.EvFollowerDetached); n != 0 {
		t.Errorf("kill-both emitted %d detach events", n)
	}
	if mon.UnhandledAlarmCount() != len(mon.Alarms()) {
		t.Errorf("unhandled = %d, alarms = %d", mon.UnhandledAlarmCount(), len(mon.Alarms()))
	}
}
