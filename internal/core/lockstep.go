package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smvx/internal/libc"
	"smvx/internal/obs"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// callResult modes.
const (
	modeEmulated = iota + 1
	modeLocal
	modeAbort
)

// callRecord is the follower's half of one lockstep rendezvous, sent to the
// leader over the (simulated shared-memory) IPC channel. thread is the
// follower's machine thread: while the follower blocks on resp the leader
// may snapshot it for forensics (the send on req established the
// happens-before edge).
type callRecord struct {
	name   string
	args   []uint64
	thread *machine.Thread
	resp   chan callResult
}

// callResult is the leader's reply: either the emulated result, an
// instruction to execute locally (user-space calls), or an abort.
type callResult struct {
	mode  int
	ret   uint64
	errno kernel.Errno
}

// session is one active protected region: the leader/follower lockstep
// state. Channels model the shared-memory IPC ring with its mutexes and
// condition variables (Section 3.2).
type session struct {
	mon   *Monitor
	fn    string
	delta int64

	leaderTID   int
	followerTID int

	req        chan *callRecord
	leaderDone chan struct{}
	thread     *kernel.Thread

	deadOnce     sync.Once
	followerDead chan struct{}
	followerErr  error

	calls         atomic.Uint64
	emulatedBytes atomic.Uint64
	diverged      atomic.Bool
}

func newSession(mon *Monitor, fn string, delta int64, leaderTID int) *session {
	return &session{
		mon:          mon,
		fn:           fn,
		delta:        delta,
		leaderTID:    leaderTID,
		req:          make(chan *callRecord),
		leaderDone:   make(chan struct{}),
		followerDead: make(chan struct{}),
	}
}

// markDead records the follower's termination (normal or crash) and wakes
// the leader if it is blocked on a rendezvous.
func (s *session) markDead(err error) {
	s.deadOnce.Do(func() {
		s.followerErr = err
		close(s.followerDead)
	})
}

// abortFollower replies abort to a pending follower call.
func abortFollower(rec *callRecord) {
	rec.resp <- callResult{mode: modeAbort}
}

// leaderCall runs the leader's side of one lockstep libc call: wait for the
// follower to arrive at its own call, compare, execute (leader-only for
// kernel-facing calls), emulate results to the follower, and reply.
func (s *session) leaderCall(t *machine.Thread, name string, args []uint64) uint64 {
	idx := s.calls.Add(1)
	s.mon.m.ChargeThread(t, s.mon.m.Costs().LockstepRendezvous)
	obsRec := s.mon.rec
	var waitStart clock.Cycles
	var span obs.RendezvousSpan
	if obsRec != nil {
		waitStart = s.mon.m.Counter().Cycles()
		span = obsRec.BeginRendezvousSpan(obs.VariantLeader, t.TID(), name,
			uint64(libc.CategoryOf(name)))
	}

	select {
	case rec := <-s.req:
		if obsRec != nil {
			obsRec.Metrics().Observe("lockstep.wait.cycles",
				uint64(s.mon.m.Counter().Cycles()-waitStart))
		}
		ret := s.leaderPaired(t, name, args, rec, idx)
		span.End(ret)
		return ret
	case <-s.followerDead:
		// The follower died mid-region (e.g. faulted on a gadget
		// address). The alarm is raised by the variant waiter; the leader
		// continues un-replicated so the region can wind down.
		s.diverged.Store(true)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	}
}

// leaderPaired handles a rendezvous where both variants arrived.
func (s *session) leaderPaired(t *machine.Thread, name string, args []uint64, rec *callRecord, idx uint64) uint64 {
	obsRec := s.mon.rec
	// Lockstep check 1: same libc function name (Section 3.3).
	if rec.name != name {
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmCallMismatch, CallIndex: idx, Function: s.fn,
			LeaderCall: name, FollowerCall: rec.name,
			Detail: fmt.Sprintf("leader called %s, follower called %s", name, rec.name),
		}, s.rendezvousSnapshots(t, rec)...)
		s.diverged.Store(true)
		abortFollower(rec)
		return s.mon.lib.Call(t, name, args)
	}
	// Lockstep check 2: same non-pointer argument values.
	if bad, li, fi := scalarMismatch(name, args, rec.args); bad {
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmArgMismatch, CallIndex: idx, Function: s.fn,
			LeaderCall: name, FollowerCall: rec.name,
			Detail: fmt.Sprintf("%s arg mismatch: leader %#x vs follower %#x", name, li, fi),
		}, s.rendezvousSnapshots(t, rec)...)
		s.diverged.Store(true)
		abortFollower(rec)
		return s.mon.lib.Call(t, name, args)
	}

	cat := libc.CategoryOf(name)
	if obsRec != nil {
		obsRec.Record(obs.EvLockstep, obs.VariantLeader, t.TID(), name, uint64(cat), idx, 0)
		obsRec.Metrics().Inc("lockstep.category." + cat.Slug())
	}
	switch cat {
	case libc.CatLocal:
		// User-space call: each variant executes in its own space.
		ret := s.mon.lib.Call(t, name, args)
		rec.resp <- callResult{mode: modeLocal}
		return ret
	default:
		// Leader-only execution; follower receives return value, errno,
		// and any output buffers over the IPC.
		ret := s.mon.lib.Call(t, name, args)
		errno := t.Errno()
		var esp obs.EmulationSpan
		if obsRec != nil {
			esp = obsRec.BeginEmulationSpan(obs.VariantLeader, t.TID(), name, uint64(cat))
		}
		copied := s.emulate(name, args, rec.args, ret)
		esp.End(uint64(copied))
		s.emulatedBytes.Add(uint64(copied))
		if obsRec != nil {
			obsRec.Record(obs.EvEmulated, obs.VariantLeader, t.TID(), name, uint64(copied), 0, ret)
			obsRec.Metrics().Add("lockstep.emulated.bytes", uint64(copied))
		}
		rec.resp <- callResult{mode: modeEmulated, ret: ret, errno: errno}
		return ret
	}
}

// rendezvousSnapshots captures both variants' thread states at a paired
// rendezvous, for the forensics report. The follower is blocked on the resp
// channel, so reading its thread is race-free (see callRecord). Snapshots
// are captured only when a recorder is attached.
func (s *session) rendezvousSnapshots(leader *machine.Thread, rec *callRecord) []obs.ThreadSnapshot {
	if s.mon.rec == nil {
		return nil
	}
	snaps := []obs.ThreadSnapshot{s.mon.snapshot("leader", leader)}
	if rec.thread != nil {
		snaps = append(snaps, s.mon.snapshot("follower", rec.thread))
	}
	return snaps
}

// followerCall runs the follower's side: publish the call, wait for the
// leader's verdict.
func (s *session) followerCall(t *machine.Thread, name string, args []uint64) uint64 {
	rec := &callRecord{name: name, args: args, thread: t, resp: make(chan callResult, 1)}
	obsRec := s.mon.rec
	var arriveTS clock.Cycles
	var a0, a1 uint64
	if obsRec != nil {
		arriveTS = s.mon.m.Counter().Cycles()
		if len(args) > 0 {
			a0 = args[0]
		}
		if len(args) > 1 {
			a1 = args[1]
		}
	}
	select {
	case s.req <- rec:
		res := <-rec.resp
		switch res.mode {
		case modeLocal:
			// lib.Call records the follower's enter/exit events itself.
			return s.mon.lib.Call(t, name, args)
		case modeEmulated:
			// The follower never reaches libc for this call, so record the
			// pair here: enter back-dated to the rendezvous arrival, exit
			// when the emulated result lands.
			if obsRec != nil {
				obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, obs.VariantFollower, t.TID(), name, a0, a1, 0)
				obsRec.RecordIn(t.Fn(), obs.EvLibcExit, obs.VariantFollower, t.TID(), name, 0, 0, res.ret)
			}
			t.SetErrno(res.errno)
			return res.ret
		default:
			if obsRec != nil {
				obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, obs.VariantFollower, t.TID(), name, a0, a1, 0)
			}
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
		}
	case <-s.leaderDone:
		// The leader already left the region: the follower is executing
		// calls the leader never made. The leader is no longer in the
		// region, so only the follower's own thread may be snapshotted.
		var snaps []obs.ThreadSnapshot
		if obsRec != nil {
			snaps = []obs.ThreadSnapshot{s.mon.snapshot("follower", t)}
		}
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmSequenceLength, CallIndex: s.calls.Load(), Function: s.fn,
			FollowerCall: name,
			Detail:       fmt.Sprintf("follower issued %s after leader finished the region", name),
		}, snaps...)
		s.diverged.Store(true)
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
	}
}

// emulate copies the leader's output buffers into the follower's
// corresponding buffers, translating embedded pointers for the special
// category, and returns bytes copied. Copies run with monitor privileges
// (raw address-space access — the monitor's PKRU has every key enabled).
func (s *session) emulate(name string, leaderArgs, followerArgs []uint64, ret uint64) int {
	as := s.mon.m.AddressSpace()
	costs := s.mon.m.Costs()
	arg := func(a []uint64, i int) uint64 {
		if i < len(a) {
			return a[i]
		}
		return 0
	}
	copyBuf := func(argIdx, n int) int {
		if n <= 0 {
			return 0
		}
		src := mem.Addr(arg(leaderArgs, argIdx))
		dst := mem.Addr(arg(followerArgs, argIdx))
		if src == 0 || dst == 0 {
			return 0
		}
		buf := make([]byte, n)
		if err := as.ReadAt(src, buf); err != nil {
			return 0
		}
		if err := as.WriteAt(dst, buf); err != nil {
			// The follower's buffer is bad — surface as divergence by
			// leaving the follower with stale data; the next check will
			// catch it. This mirrors the paper's "extra bounds checks on
			// sensitive calls" future-work remark.
			return 0
		}
		_ = as.CopyTaint(dst, src, n)
		s.mon.m.ChargeThread(nil, costs.LockstepCopyPerByte*cyclesOf(n))
		return n
	}

	retN := 0
	if int64(ret) > 0 {
		retN = int(int64(ret))
	}
	switch name {
	case "read", "recv":
		return copyBuf(1, retN)
	case "stat", "fstat":
		return copyBuf(1, 24)
	case "gettimeofday":
		return copyBuf(0, 16)
	case "time":
		return copyBuf(0, 8)
	case "localtime_r":
		return copyBuf(1, 64)
	case "getsockopt":
		return copyBuf(2, 8)
	case "ioctl":
		// Special: the third argument is emulated only when it looks like
		// a pointer into the process's address space (Section 3.3).
		if s.inLeaderSpace(mem.Addr(arg(leaderArgs, 2))) {
			return copyBuf(2, 8)
		}
		return 0
	case "epoll_wait", "epoll_pwait":
		// Special: copy the events array; epoll_data entries that are
		// pointers into the leader's space must be rebased into the
		// follower's window (Section 3.3).
		n := retN
		src := mem.Addr(arg(leaderArgs, 1))
		dst := mem.Addr(arg(followerArgs, 1))
		total := 0
		for i := 0; i < n; i++ {
			var entry [16]byte
			if err := as.ReadAt(src+mem.Addr(i*16), entry[:]); err != nil {
				break
			}
			data := fromLE(entry[8:])
			if s.inLeaderSpace(mem.Addr(data)) {
				data = uint64(int64(data) + s.delta)
				toLE(entry[8:], data)
			}
			if err := as.WriteAt(dst+mem.Addr(i*16), entry[:]); err != nil {
				break
			}
			total += 16
		}
		s.mon.m.ChargeThread(nil, costs.LockstepCopyPerByte*cyclesOf(total))
		return total
	default:
		return 0
	}
}

// inLeaderSpace reports whether v falls inside the leader's image or heap —
// the "falls within the process's address space" test for special-category
// emulation.
func (s *session) inLeaderSpace(v mem.Addr) bool {
	img := s.mon.img
	if v >= img.Base && v < img.End() {
		return true
	}
	if h := s.mon.lib.Heap(0); h != nil {
		if v >= s.mon.leaderHeapBase() && v < s.mon.lib.HeapWatermark(0) {
			return true
		}
	}
	return false
}

// scalarMismatch compares the non-pointer arguments of a libc call between
// variants, returning the first differing pair.
func scalarMismatch(name string, leader, follower []uint64) (bad bool, l, f uint64) {
	mask := scalarArgMask(name)
	n := len(leader)
	if len(follower) < n {
		n = len(follower)
	}
	if len(leader) != len(follower) {
		return true, uint64(len(leader)), uint64(len(follower))
	}
	for i := 0; i < n && i < len(mask); i++ {
		if mask[i] && leader[i] != follower[i] {
			return true, leader[i], follower[i]
		}
	}
	return false, 0, 0
}

// ScalarArgMask returns, per argument position of a libc call, whether the
// value is a scalar (comparable across variants) as opposed to a pointer
// (whose value legitimately differs between the variants' non-overlapping
// address windows). Positions beyond the mask are not comparable. This is
// the rendezvous check's own table, exported so offline analysis
// (internal/obs/replay) applies the exact same pointer semantics when
// diffing a recorded leader stream against its follower stream.
func ScalarArgMask(name string) []bool { return scalarArgMask(name) }

// ScalarRet reports whether a libc call's return value is a scalar,
// comparable across variants. Allocation and buffer calls return pointers
// into the calling variant's own window, so their values differ between
// variants by construction.
func ScalarRet(name string) bool {
	switch name {
	case "malloc", "calloc", "realloc", "memcpy", "memset", "localtime_r":
		return false
	default:
		return true
	}
}

// scalarArgMask returns, per argument position, whether the value is a
// scalar (comparable across variants) as opposed to a pointer (whose value
// legitimately differs between non-overlapping address spaces).
func scalarArgMask(name string) []bool {
	switch name {
	case "open", "mkdir":
		return []bool{false, true}
	case "stat":
		return []bool{false, false} // path and stat buffer: both pointers
	case "close", "epoll_create", "socket", "random", "time", "free",
		"strlen", "atoi", "localtime_r":
		return []bool{false, false}
	case "read", "recv", "write", "send", "writev":
		return []bool{true, false, true}
	case "fstat":
		return []bool{true, false}
	case "gettimeofday":
		return []bool{false, true}
	case "sendfile":
		return []bool{true, true, false, true}
	case "bind", "listen", "connect", "shutdown":
		return []bool{true, true}
	case "setsockopt":
		return []bool{true, true, true}
	case "getsockopt", "ioctl":
		return []bool{true, true, false}
	case "epoll_ctl":
		return []bool{true, true, true, false}
	case "epoll_wait":
		return []bool{true, false, true, true}
	case "epoll_pwait":
		return []bool{true, false, true, true, true}
	case "malloc":
		return []bool{true}
	case "calloc":
		return []bool{true, true}
	case "realloc":
		return []bool{false, true}
	case "memcpy", "memset":
		return []bool{false, false, true}
	case "strcmp":
		return []bool{false, false}
	case "strncmp":
		return []bool{false, false, true}
	case "snprintf":
		return []bool{false, true, false}
	default:
		return nil
	}
}

func cyclesOf(n int) clock.Cycles {
	if n < 0 {
		return 0
	}
	return clock.Cycles(n)
}

func fromLE(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func toLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
