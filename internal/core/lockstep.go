package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"smvx/internal/libc"
	"smvx/internal/obs"
	"smvx/internal/obs/ledger"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// callResult modes.
const (
	modeEmulated = iota + 1
	modeLocal
	modeAbort
	modeDetach
)

// callRecord is a follower's half of one lockstep rendezvous, sent to the
// leader over the (simulated shared-memory) IPC channel. wire is the
// varint-framed encoding of (name, args) — what actually crosses the ring;
// the leader decodes it rather than trusting the in-memory fields. thread
// is the follower's machine thread: while the follower blocks on resp the
// leader may snapshot it for forensics (the send on req established the
// happens-before edge).
type callRecord struct {
	name   string
	args   []uint64
	wire   []byte
	thread *machine.Thread
	resp   chan callResult
	// lag is how many cycles the follower charged since its previous
	// rendezvous — its own work getting here. Unlike a shared-counter
	// elapsed-time measurement it does not depend on how the variants'
	// goroutines interleave, so the deadline verdict is deterministic.
	lag clock.Cycles
}

// callResult is the leader's reply: either the emulated result, an
// instruction to execute locally (user-space calls), or an abort.
type callResult struct {
	mode  int
	ret   uint64
	errno kernel.Errno
}

// followerSlot is one follower variant's seat in the variant set: its
// address-space window (delta), thread identity, IPC lanes (the strict
// rendezvous channel and the pipelined run-ahead ring with its own drain
// cursor), and per-slot lifecycle state (death, policy detach).
type followerSlot struct {
	id    int   // 1-based slot index; window sits at id*Delta
	delta int64 // this slot's address-window shift

	tid    int
	thread *kernel.Thread

	req  chan *callRecord   // strict-mode rendezvous lane
	ring chan *leaderRecord // pipelined run-ahead lane

	// drained counts records this slot has verified; fCycles is the slot
	// thread's cycle total at its previous rendezvous. Both are touched
	// only by the slot's own goroutine (or by the leader while the slot is
	// parked on a rendezvous reply).
	drained uint64
	fCycles clock.Cycles

	deadOnce sync.Once
	dead     chan struct{}
	err      error

	detachOnce sync.Once
	detachCh   chan struct{}
}

// markDead records the slot's termination (normal or crash) and wakes the
// leader if it is blocked on a rendezvous with this slot.
func (sl *followerSlot) markDead(err error) {
	sl.deadOnce.Do(func() {
		sl.err = err
		close(sl.dead)
	})
}

// detached reports whether the policy severed this slot from lockstep.
func (sl *followerSlot) detached() bool {
	select {
	case <-sl.detachCh:
		return true
	default:
		return false
	}
}

// drainPending clears any rendezvous slot the follower published before
// the detach, replying with the detach verdict so it never blocks on resp.
func (sl *followerSlot) drainPending() {
	for {
		select {
		case rec := <-sl.req:
			rec.resp <- callResult{mode: modeDetach}
		default:
			return
		}
	}
}

// session is one active protected region: the leader plus the variant
// set's follower slots in lockstep. Channels model the shared-memory IPC
// ring with its mutexes and condition variables (Section 3.2).
type session struct {
	mon   *Monitor
	fn    string
	delta int64 // base window shift; slot k sits at k*delta

	leaderTID int
	slots     []*followerSlot

	leaderDone chan struct{}

	// Pipelined lockstep state (see pipeline.go): each slot's ring is the
	// bounded run-ahead queue of leader call records; the lag window is
	// bounded by the slowest slot's cursor (a full ring blocks the leader).
	pipelined bool

	// Containment state (see policy.go): timedOut is closed when a
	// rendezvous deadline blows; watchStop ends the watchdog goroutine at
	// region exit. waitingSince is the leader's current rendezvous wait
	// start (cycles+1; 0 = not waiting), polled by the watchdog.
	timeoutOnce  sync.Once
	timedOut     chan struct{}
	watchOnce    sync.Once
	watchStop    chan struct{}
	waitingSince atomic.Int64

	leaderOnly bool // degraded session that never had a follower
	restarted  bool // session whose followers are a policy re-clone
	abortable  bool // region entered via Invoke: a guarded frame can catch a mid-flight abort

	// Rollback state (PolicyRollback; see snapshot.go): snapped marks that
	// this region captured its entry checkpoint (leader goroutine only);
	// rollbackCause holds the root-cause ordinal of the region's first
	// alarm, stored as ordinal+1 so zero means "no alarm yet".
	snapped       bool
	rollbackCause atomic.Uint64

	calls         atomic.Uint64
	emulatedBytes atomic.Uint64
	diverged      atomic.Bool

	// lr is this region's cost-ledger bucket (nil when no ledger is
	// attached; every method on a nil Region is a free no-op).
	lr *ledger.Region
}

func newSession(mon *Monitor, fn string, delta int64, leaderTID int) *session {
	s := &session{
		mon:        mon,
		fn:         fn,
		delta:      delta,
		leaderTID:  leaderTID,
		leaderDone: make(chan struct{}),
		timedOut:   make(chan struct{}),
		watchStop:  make(chan struct{}),
		pipelined:  mon.opts.Lockstep == LockstepPipelined,
		lr:         mon.led.Region(fn),
	}
	n := mon.numFollowers()
	s.slots = make([]*followerSlot, n)
	for i := 0; i < n; i++ {
		s.slots[i] = &followerSlot{
			id:       i + 1,
			delta:    delta * int64(i+1),
			req:      make(chan *callRecord),
			ring:     make(chan *leaderRecord, mon.opts.LagWindow),
			dead:     make(chan struct{}),
			detachCh: make(chan struct{}),
		}
	}
	return s
}

// attached returns the slots the policy has not severed, in slot order.
func (s *session) attached() []*followerSlot {
	out := make([]*followerSlot, 0, len(s.slots))
	for _, sl := range s.slots {
		if !sl.detached() {
			out = append(out, sl)
		}
	}
	return out
}

// allDetached reports whether every slot has been severed.
func (s *session) allDetached() bool {
	for _, sl := range s.slots {
		if !sl.detached() {
			return false
		}
	}
	return true
}

// allSlotsDead reports whether every slot's thread has terminated.
func (s *session) allSlotsDead() bool {
	for _, sl := range s.slots {
		select {
		case <-sl.dead:
		default:
			return false
		}
	}
	return true
}

// liveAttached counts slots that are neither detached nor dead.
func (s *session) liveAttached() int {
	n := 0
	for _, sl := range s.slots {
		if sl.detached() {
			continue
		}
		select {
		case <-sl.dead:
		default:
			n++
		}
	}
	return n
}

// slotByTID maps a thread ID to its follower slot (nil for the leader or
// unrelated threads). The slot count is tiny; a linear scan beats a map.
func (s *session) slotByTID(tid int) *followerSlot {
	for _, sl := range s.slots {
		if sl.tid == tid && tid != 0 {
			return sl
		}
	}
	return nil
}

// abortFollower replies abort to a pending follower call.
func abortFollower(rec *callRecord) {
	rec.resp <- callResult{mode: modeAbort}
}

// rejectFollower answers a diverging rendezvous per the policy: kill-both
// aborts the follower with ErrDivergence (the paper's behaviour),
// containment detaches it. Detach bookkeeping runs before the reply so the
// backoff timestamp is read while the follower is still parked on resp.
func (s *session) rejectFollower(sl *followerSlot, rec *callRecord, cause string) {
	if s.mon.contain() {
		s.mon.detachFollower(s, sl, cause)
		rec.resp <- callResult{mode: modeDetach}
		return
	}
	abortFollower(rec)
}

// tripTimeout wakes whoever is blocked on the session's rendezvous.
func (s *session) tripTimeout() {
	s.timeoutOnce.Do(func() { close(s.timedOut) })
}

// stopWatch ends the deadline watchdog at region exit.
func (s *session) stopWatch() {
	s.watchOnce.Do(func() { close(s.watchStop) })
}

// Watchdog tuning: the poll interval, and how many consecutive polls with a
// frozen virtual clock (leader waiting, no cycles charged anywhere) trip
// the deadline early.
const (
	watchdogPoll        = 2 * time.Millisecond
	watchdogFrozenPolls = 250
)

// watch is the rendezvous deadline watchdog: a real-time poller that trips
// the session's timeout when the leader has waited past the virtual-cycle
// deadline, or — the frozen-clock breaker — when the leader is waiting and
// virtual time has stopped advancing entirely (a follower hung off-CPU
// charges no cycles, so a purely virtual deadline would never fire).
// Stalls that do charge cycles are caught deterministically at rendezvous
// completion in leaderCall; the watchdog covers followers that never
// arrive at all.
func (s *session) watch(deadline clock.Cycles) {
	ticker := time.NewTicker(watchdogPoll)
	defer ticker.Stop()
	frozenFor := 0
	var lastWait int64
	var lastNow clock.Cycles
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
		}
		if s.allSlotsDead() {
			return
		}
		w := s.waitingSince.Load()
		now := s.mon.m.Counter().Cycles()
		if w == 0 {
			frozenFor = 0
			lastWait = 0
			continue
		}
		if now-clock.Cycles(w-1) >= deadline {
			s.tripTimeout()
			return
		}
		if w == lastWait && now == lastNow {
			frozenFor++
			if frozenFor >= watchdogFrozenPolls {
				s.tripTimeout()
				return
			}
		} else {
			frozenFor = 0
		}
		lastWait, lastNow = w, now
	}
}

// leaderCall runs the leader's side of one lockstep libc call: wait for the
// attached followers to arrive at their own calls, compare (pairwise with a
// single follower, by majority vote with more), execute (leader-only for
// kernel-facing calls), emulate results to the followers, and reply.
// Pipelined sessions branch into the run-ahead engine (pipeline.go).
func (s *session) leaderCall(t *machine.Thread, name string, args []uint64) uint64 {
	if s.pipelined {
		return s.leaderCallPipelined(t, name, args)
	}
	idx := s.calls.Add(1)
	att := s.attached()
	switch len(att) {
	case 0:
		// Degraded single-variant mode after a policy detach: no
		// rendezvous to charge or wait for. Under rollback the detach means
		// a follower faulted — unwind instead of running un-replicated.
		s.maybeAbortRegion(t, name, idx)
		return s.mon.lib.Call(t, name, args)
	case 1:
		return s.leaderCallPair(t, name, args, att[0], idx)
	default:
		return s.leaderCallVote(t, name, args, att, idx)
	}
}

// leaderCallPair is the paper's two-party rendezvous against the one
// remaining attached slot — the exact pairwise discipline the pair-shaped
// monitor ran, byte for byte at Variants=2.
func (s *session) leaderCallPair(t *machine.Thread, name string, args []uint64, sl *followerSlot, idx uint64) uint64 {
	s.mon.m.ChargeThread(t, s.mon.m.Costs().LockstepRendezvous)
	obsRec := s.mon.rec
	waitStart := s.mon.m.Counter().Cycles()
	var span obs.RendezvousSpan
	if obsRec != nil {
		span = obsRec.BeginRendezvousSpan(obs.VariantLeader, t.TID(), name,
			uint64(libc.CategoryOf(name)))
	}

	s.waitingSince.Store(int64(waitStart) + 1)
	select {
	case rec := <-sl.req:
		s.waitingSince.Store(0)
		now := s.mon.m.Counter().Cycles()
		t.AddWaitCycles(now - waitStart)
		if obsRec != nil {
			obsRec.Metrics().Observe("lockstep.wait.cycles", uint64(now-waitStart))
			obsRec.Metrics().Observe(obs.MetricRendezvousLeaderCycles,
				uint64(s.mon.m.Costs().LockstepRendezvous+(now-waitStart)))
			obsRec.ObserveSeries(obs.SeriesRendezvous,
				uint64(s.mon.m.Costs().LockstepRendezvous+(now-waitStart)))
		}
		if lr := s.lr; lr != nil {
			// The two charges below sum to exactly what the
			// rendezvous.leader.cycles histogram observed above — the
			// ledger/histogram reconciliation invariant.
			cls := ledger.ClassOf(name)
			lr.Add(ledger.PhaseRendezvous, obs.VariantLeader, cls,
				s.mon.m.Costs().LockstepRendezvous, ledger.Mark{}, 0)
			lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
				now-waitStart, ledger.Mark{}, 0)
		}
		if d := s.mon.opts.RendezvousDeadline; d > 0 && (rec.lag > d || now-waitStart > d) {
			// The follower did arrive, but only after stalling past the
			// deadline. rec.lag (the follower's own cycles since its last
			// rendezvous) is the deterministic detector — it is independent
			// of how the goroutines interleaved; the elapsed-wait check is a
			// backstop for pathological multi-thread charging.
			late := now - waitStart
			if rec.lag > d {
				late = rec.lag
			}
			ret := s.leaderTimedOut(t, name, args, sl, rec, idx, late)
			span.End(ret)
			return ret
		}
		ret := s.leaderPaired(t, name, args, sl, rec, idx)
		span.End(ret)
		return ret
	case <-sl.dead:
		s.waitingSince.Store(0)
		// The follower died mid-region (e.g. faulted on a gadget
		// address). The alarm is raised by the variant waiter; under
		// rollback the region is unwound right here — the leader may be
		// executing hijacked control flow — otherwise the leader continues
		// un-replicated so the region can wind down.
		s.diverged.Store(true)
		s.maybeAbortRegion(t, name, idx)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	case <-s.timedOut:
		s.waitingSince.Store(0)
		ret := s.leaderTimedOut(t, name, args, sl, nil, idx, 0)
		span.End(ret)
		return ret
	}
}

// slotArrival pairs a follower slot with the call record it published at a
// multi-party rendezvous.
type slotArrival struct {
	slot *followerSlot
	rec  *callRecord
}

// leaderCallVote runs an N-way strict rendezvous: collect every attached
// slot's record (granting the pipeline grace window to stragglers once the
// session deadline blows), then resolve by majority vote.
func (s *session) leaderCallVote(t *machine.Thread, name string, args []uint64, att []*followerSlot, idx uint64) uint64 {
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepRendezvous*clock.Cycles(len(att)))
	obsRec := s.mon.rec
	waitStart := s.mon.m.Counter().Cycles()
	var span obs.RendezvousSpan
	if obsRec != nil {
		span = obsRec.BeginRendezvousSpan(obs.VariantLeader, t.TID(), name,
			uint64(libc.CategoryOf(name)))
	}
	s.waitingSince.Store(int64(waitStart) + 1)
	arrivals := s.collectArrivals(t, att, name, idx)
	s.waitingSince.Store(0)
	now := s.mon.m.Counter().Cycles()
	t.AddWaitCycles(now - waitStart)
	if obsRec != nil {
		obsRec.Metrics().Observe("lockstep.wait.cycles", uint64(now-waitStart))
		obsRec.Metrics().Observe(obs.MetricRendezvousLeaderCycles,
			uint64(costs.LockstepRendezvous*clock.Cycles(len(att))+(now-waitStart)))
		obsRec.ObserveSeries(obs.SeriesRendezvous,
			uint64(costs.LockstepRendezvous*clock.Cycles(len(att))+(now-waitStart)))
	}
	if lr := s.lr; lr != nil {
		cls := ledger.ClassOf(name)
		lr.Add(ledger.PhaseRendezvous, obs.VariantLeader, cls,
			costs.LockstepRendezvous*clock.Cycles(len(att)), ledger.Mark{}, 0)
		lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
			now-waitStart, ledger.Mark{}, 0)
	}
	// Deadline verdicts per arrival: a slot that arrived but stalled past
	// the deadline is severed exactly as the pairwise path would sever it.
	if d := s.mon.opts.RendezvousDeadline; d > 0 {
		kept := arrivals[:0]
		for _, a := range arrivals {
			if a.rec.lag > d {
				s.mon.raiseAlarm(Alarm{
					Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
					LeaderCall: name, FollowerCall: a.rec.name, Variant: VariantID(a.slot.id),
					Detail: fmt.Sprintf("variant %d arrived %d cycles into a %d-cycle rendezvous deadline",
						a.slot.id, a.rec.lag, d),
				}, s.rendezvousSnapshots(t, a.rec)...)
				s.diverged.Store(true)
				s.mon.rec.Metrics().Inc("rendezvous.timeout")
				s.rejectFollower(a.slot, a.rec, "rendezvous-timeout")
				continue
			}
			kept = append(kept, a)
		}
		arrivals = kept
	}
	ret := s.voteResolve(t, name, args, arrivals, idx)
	span.End(ret)
	return ret
}

// collectArrivals waits for each attached slot's rendezvous record in slot
// order. Once the session deadline trips, each remaining slot is granted
// the pipeline grace window; a slot that still has not arrived is declared
// wedged and severed with a timeout alarm.
func (s *session) collectArrivals(t *machine.Thread, att []*followerSlot, name string, idx uint64) []slotArrival {
	arrivals := make([]slotArrival, 0, len(att))
	graced := false
	for _, sl := range att {
		var rec *callRecord
		if !graced {
			select {
			case rec = <-sl.req:
			case <-sl.dead:
			case <-s.timedOut:
				graced = true
			}
		}
		if rec == nil && graced {
			select {
			case rec = <-sl.req:
			case <-sl.dead:
			case <-time.After(pipelineGrace):
				s.mon.raiseAlarm(Alarm{
					Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
					LeaderCall: name, Variant: VariantID(sl.id),
					Detail: fmt.Sprintf("variant %d missed the %d-cycle rendezvous deadline",
						sl.id, s.mon.opts.RendezvousDeadline),
				})
				s.diverged.Store(true)
				s.mon.rec.Metrics().Inc("rendezvous.timeout")
				s.mon.detachFollower(s, sl, "rendezvous-timeout")
			}
		}
		if rec == nil {
			select {
			case <-sl.dead:
				// The slot died instead of arriving; its variant waiter
				// raises the follower-fault alarm.
				s.diverged.Store(true)
			default:
			}
			continue
		}
		arrivals = append(arrivals, slotArrival{slot: sl, rec: rec})
	}
	return arrivals
}

// voteResolve finishes a multi-party rendezvous after collection: decode
// each record, vote, quarantine the minority, and emulate results to the
// majority. Shared by the strict N-way rendezvous and the pipelined
// barrier.
func (s *session) voteResolve(t *machine.Thread, name string, args []uint64, arrivals []slotArrival, idx uint64) uint64 {
	if s.mon.snapshotDue(s) && len(arrivals) > 0 {
		recs := make([]*callRecord, 0, len(arrivals))
		for _, a := range arrivals {
			recs = append(recs, a.rec)
		}
		s.mon.captureCheckpoint(s, t, recs, name, idx)
	}
	// Decode every record; one that does not frame is a divergence in its
	// own right (that slot's monitor half wrote garbage) and its ballot is
	// invalid.
	type decoded struct {
		slotArrival
		fname string
		fargs []uint64
	}
	valid := make([]decoded, 0, len(arrivals))
	cmpMark := s.lr.Mark()
	var wireBytes uint64
	for _, a := range arrivals {
		fname, fargs, derr := decodeCallRecord(a.rec.wire)
		wireBytes += uint64(len(a.rec.wire))
		if derr != nil {
			s.mon.raiseAlarm(Alarm{
				Reason: AlarmCallMismatch, CallIndex: idx, Function: s.fn,
				LeaderCall: name, Variant: VariantID(a.slot.id),
				Detail: fmt.Sprintf("corrupt IPC call record: %v", derr),
			}, s.rendezvousSnapshots(t, a.rec)...)
			s.diverged.Store(true)
			s.rejectFollower(a.slot, a.rec, "ipc-corruption")
			continue
		}
		valid = append(valid, decoded{slotArrival: a, fname: fname, fargs: fargs})
	}
	switch len(valid) {
	case 0:
		s.maybeAbortRegion(t, name, idx)
		return s.mon.lib.Call(t, name, args)
	case 1:
		// One survivor: the pairwise compare and its legacy alarms apply.
		return s.leaderPaired(t, name, args, valid[0].slot, valid[0].rec, idx)
	}

	// The vote. Ballot 0 is the leader; ballot k maps to valid[k-1].
	ballots := make([]Ballot, 1, len(valid)+1)
	ballots[0] = Ballot{Variant: 0, Name: name, Args: args, Valid: true}
	for _, v := range valid {
		ballots = append(ballots, Ballot{
			Variant: VariantID(v.slot.id), Name: v.fname, Args: v.fargs, Valid: true,
		})
	}
	res := Vote(ballots)
	obsRec := s.mon.rec
	if lr := s.lr; lr != nil {
		lr.Add(ledger.PhaseCompare, obs.VariantLeader, ledger.ClassOf(name),
			0, cmpMark, wireBytes)
	}

	leaderWon := res.Winner == 0
	if !leaderWon {
		// The followers outvoted the leader. The leader is the only variant
		// wired to the kernel, so it still executes — but the whole set is
		// suspect: the alarm names variant 0 and every follower is rejected
		// per the policy (kill-both aborts them, containment detaches).
		maj := ballots[res.Winner]
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmOutvoted, CallIndex: idx, Function: s.fn,
			LeaderCall: name, FollowerCall: maj.Name, Variant: 0,
			Detail: fmt.Sprintf("leader outvoted %d-to-1 at %s: majority called %s",
				res.Majority, name, maj.Name),
		})
		s.diverged.Store(true)
		if obsRec != nil {
			obsRec.Metrics().Inc("vote.leader_outvoted")
		}
		for _, v := range valid {
			s.rejectFollower(v.slot, v.rec, "outvoted")
		}
		s.maybeAbortRegion(t, name, idx)
		return s.mon.lib.Call(t, name, args)
	}

	// Leader in the majority: quarantine each minority follower, then run
	// the call once and emulate results to the winners.
	winners := make([]decoded, 0, len(valid))
	losers := make(map[int]bool, len(res.Losers))
	for _, li := range res.Losers {
		losers[li] = true
	}
	for bi, v := range valid {
		if losers[bi+1] {
			s.mon.raiseAlarm(Alarm{
				Reason: AlarmOutvoted, CallIndex: idx, Function: s.fn,
				LeaderCall: name, FollowerCall: v.fname, Variant: VariantID(v.slot.id),
				Detail: fmt.Sprintf("variant %d outvoted %d-to-1 at call %s: it called %s",
					v.slot.id, res.Majority, name, v.fname),
			}, s.rendezvousSnapshots(t, v.rec)...)
			s.diverged.Store(true)
			if obsRec != nil {
				obsRec.Metrics().Inc("vote.follower_outvoted")
			}
			s.rejectFollower(v.slot, v.rec, "outvoted")
			continue
		}
		winners = append(winners, v)
	}

	cat := libc.CategoryOf(name)
	if obsRec != nil {
		obsRec.Record(obs.EvLockstep, obs.VariantLeader, t.TID(), name, uint64(cat), idx, 0)
		obsRec.Metrics().Inc("lockstep.category." + cat.Slug())
	}
	switch cat {
	case libc.CatLocal:
		// User-space call: each variant executes in its own space.
		ret := s.mon.lib.Call(t, name, args)
		for _, w := range winners {
			w.rec.resp <- callResult{mode: modeLocal}
		}
		return ret
	default:
		// Leader-only execution; each winning follower receives return
		// value, errno, and output buffers over its own IPC lane.
		ret := s.mon.lib.Call(t, name, args)
		errno := t.Errno()
		var esp obs.EmulationSpan
		if obsRec != nil {
			esp = obsRec.BeginEmulationSpan(obs.VariantLeader, t.TID(), name, uint64(cat))
		}
		emuMark := s.lr.Mark()
		total := 0
		for _, w := range winners {
			copied, efault := s.emulate(name, args, w.fargs, ret, idx, w.slot.delta)
			total += copied
			s.emulatedBytes.Add(uint64(copied))
			if efault && s.mon.contain() {
				s.mon.detachFollower(s, w.slot, "emulation-fault")
				w.rec.resp <- callResult{mode: modeDetach}
				continue
			}
			w.rec.resp <- callResult{mode: modeEmulated, ret: ret, errno: errno}
		}
		esp.End(uint64(total))
		if lr := s.lr; lr != nil {
			lr.Add(ledger.PhaseEmulate, obs.VariantLeader, ledger.ClassOf(name),
				s.mon.m.Costs().LockstepCopyPerByte*cyclesOf(total), emuMark, uint64(total))
		}
		if obsRec != nil {
			obsRec.Record(obs.EvEmulated, obs.VariantLeader, t.TID(), name, uint64(total), 0, ret)
			obsRec.Metrics().Add("lockstep.emulated.bytes", uint64(total))
		}
		return ret
	}
}

// leaderTimedOut handles a blown rendezvous deadline against one slot:
// raise AlarmRendezvousTimeout, sever that slot per the policy, and let
// the leader continue. rec is non-nil when the follower did arrive, too
// late — elapsed is the measured wait in that case; nil means the watchdog
// tripped while the follower was still missing.
func (s *session) leaderTimedOut(t *machine.Thread, name string, args []uint64, sl *followerSlot, rec *callRecord, idx uint64, elapsed clock.Cycles) uint64 {
	deadline := s.mon.opts.RendezvousDeadline
	detail := fmt.Sprintf("follower missed the %d-cycle rendezvous deadline", deadline)
	fcall := ""
	var snaps []obs.ThreadSnapshot
	if rec != nil {
		fcall = rec.name
		detail = fmt.Sprintf("follower arrived %d cycles into a %d-cycle rendezvous deadline", elapsed, deadline)
		snaps = s.rendezvousSnapshots(t, rec)
	} else if s.mon.rec != nil {
		snaps = []obs.ThreadSnapshot{s.mon.snapshot("leader", t)}
	}
	s.mon.raiseAlarm(Alarm{
		Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
		LeaderCall: name, FollowerCall: fcall, Detail: detail,
		Variant: VariantID(sl.id),
	}, snaps...)
	s.diverged.Store(true)
	s.mon.rec.Metrics().Inc("rendezvous.timeout")
	if rec != nil {
		s.rejectFollower(sl, rec, "rendezvous-timeout")
	} else {
		s.mon.detachFollower(s, sl, "rendezvous-timeout")
	}
	return s.mon.lib.Call(t, name, args)
}

// leaderPaired handles a rendezvous where the leader and one follower slot
// arrived — the paper's pairwise compare.
func (s *session) leaderPaired(t *machine.Thread, name string, args []uint64, sl *followerSlot, rec *callRecord, idx uint64) uint64 {
	obsRec := s.mon.rec
	if s.mon.snapshotDue(s) {
		// A quiescent anchor point: both variants are parked at the same
		// ordinal (in pipelined mode this is a barrier, so the ring is
		// drained) and no emulation is in flight. The checkpoint lands
		// before this call's divergence checks — a rendezvous that fails
		// them below was still quiescent when captured, and the budget
		// catches a checkpoint that keeps absorbing the same divergence.
		s.mon.captureCheckpoint(s, t, []*callRecord{rec}, name, idx)
	}
	cmpMark := s.lr.Mark()
	// Lockstep check 0: the IPC record itself must decode. A record that
	// does not frame correctly cannot be compared, which is itself a
	// divergence (the follower's monitor half wrote garbage).
	fname, fargs, derr := decodeCallRecord(rec.wire)
	if derr != nil {
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmCallMismatch, CallIndex: idx, Function: s.fn,
			LeaderCall: name, Variant: VariantID(sl.id),
			Detail: fmt.Sprintf("corrupt IPC call record: %v", derr),
		}, s.rendezvousSnapshots(t, rec)...)
		s.diverged.Store(true)
		s.rejectFollower(sl, rec, "ipc-corruption")
		return s.mon.lib.Call(t, name, args)
	}
	// Lockstep check 1: same libc function name (Section 3.3).
	if fname != name {
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmCallMismatch, CallIndex: idx, Function: s.fn,
			LeaderCall: name, FollowerCall: fname, Variant: VariantID(sl.id),
			Detail: fmt.Sprintf("leader called %s, follower called %s", name, fname),
		}, s.rendezvousSnapshots(t, rec)...)
		s.diverged.Store(true)
		s.rejectFollower(sl, rec, "call-mismatch")
		return s.mon.lib.Call(t, name, args)
	}
	// Lockstep check 2: same non-pointer argument values.
	if bad, li, fi := scalarMismatch(name, args, fargs); bad {
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmArgMismatch, CallIndex: idx, Function: s.fn,
			LeaderCall: name, FollowerCall: fname, Variant: VariantID(sl.id),
			Detail: fmt.Sprintf("%s arg mismatch: leader %#x vs follower %#x", name, li, fi),
		}, s.rendezvousSnapshots(t, rec)...)
		s.diverged.Store(true)
		s.rejectFollower(sl, rec, "arg-mismatch")
		return s.mon.lib.Call(t, name, args)
	}

	cat := libc.CategoryOf(name)
	if obsRec != nil {
		obsRec.Record(obs.EvLockstep, obs.VariantLeader, t.TID(), name, uint64(cat), idx, 0)
		obsRec.Metrics().Inc("lockstep.category." + cat.Slug())
	}
	if lr := s.lr; lr != nil {
		// Decode+compare charges no virtual cycles (the cost model folds it
		// into the rendezvous entry); the ledger still counts occurrences,
		// allocations, and the wire volume verified.
		lr.Add(ledger.PhaseCompare, obs.VariantLeader, ledger.ClassOf(name),
			0, cmpMark, uint64(len(rec.wire)))
	}
	switch cat {
	case libc.CatLocal:
		// User-space call: each variant executes in its own space.
		ret := s.mon.lib.Call(t, name, args)
		rec.resp <- callResult{mode: modeLocal}
		return ret
	default:
		// Leader-only execution; follower receives return value, errno,
		// and any output buffers over the IPC.
		ret := s.mon.lib.Call(t, name, args)
		errno := t.Errno()
		var esp obs.EmulationSpan
		if obsRec != nil {
			esp = obsRec.BeginEmulationSpan(obs.VariantLeader, t.TID(), name, uint64(cat))
		}
		emuMark := s.lr.Mark()
		copied, efault := s.emulate(name, args, fargs, ret, idx, sl.delta)
		esp.End(uint64(copied))
		if lr := s.lr; lr != nil {
			lr.Add(ledger.PhaseEmulate, obs.VariantLeader, ledger.ClassOf(name),
				s.mon.m.Costs().LockstepCopyPerByte*cyclesOf(copied), emuMark, uint64(copied))
		}
		s.emulatedBytes.Add(uint64(copied))
		if obsRec != nil {
			obsRec.Record(obs.EvEmulated, obs.VariantLeader, t.TID(), name, uint64(copied), 0, ret)
			obsRec.Metrics().Add("lockstep.emulated.bytes", uint64(copied))
		}
		if efault && s.mon.contain() {
			// The follower's result buffer is gone; it cannot keep up.
			s.mon.detachFollower(s, sl, "emulation-fault")
			rec.resp <- callResult{mode: modeDetach}
			return ret
		}
		rec.resp <- callResult{mode: modeEmulated, ret: ret, errno: errno}
		return ret
	}
}

// rendezvousSnapshots captures both variants' thread states at a paired
// rendezvous, for the forensics report. The follower is blocked on the resp
// channel, so reading its thread is race-free (see callRecord). Snapshots
// are captured only when a recorder is attached.
func (s *session) rendezvousSnapshots(leader *machine.Thread, rec *callRecord) []obs.ThreadSnapshot {
	if s.mon.rec == nil {
		return nil
	}
	snaps := []obs.ThreadSnapshot{s.mon.snapshot("leader", leader)}
	if rec.thread != nil {
		snaps = append(snaps, s.mon.snapshot("follower", rec.thread))
	}
	return snaps
}

// followerCall runs one follower slot's side: publish the call on the
// slot's lane, wait for the leader's verdict. Pipelined sessions drain the
// slot's rendezvous ring instead (pipeline.go).
func (s *session) followerCall(t *machine.Thread, sl *followerSlot, name string, args []uint64) uint64 {
	if s.pipelined {
		return s.followerCallPipelined(t, sl, name, args)
	}
	fv := obs.FollowerVariant(sl.id)
	cyc := t.UserCycles()
	mshMark := s.lr.Mark()
	rec := &callRecord{
		name: name, args: args, wire: encodeCallRecord(name, args),
		thread: t, resp: make(chan callResult, 1),
		lag: cyc - sl.fCycles,
	}
	sl.fCycles = cyc
	lr := s.lr
	var cls ledger.Class
	var fwaitStart clock.Cycles
	if lr != nil {
		cls = ledger.ClassOf(name)
		lr.Add(ledger.PhaseMarshal, fv, cls, 0, mshMark, uint64(len(rec.wire)))
		fwaitStart = s.mon.m.Counter().Cycles()
	}
	obsRec := s.mon.rec
	var arriveTS clock.Cycles
	var a0, a1 uint64
	if obsRec != nil {
		arriveTS = s.mon.m.Counter().Cycles()
		if len(args) > 0 {
			a0 = args[0]
		}
		if len(args) > 1 {
			a1 = args[1]
		}
	}
	select {
	case sl.req <- rec:
		res := <-rec.resp
		if lr != nil {
			lr.Add(ledger.PhaseWait, fv, cls,
				s.mon.m.Counter().Cycles()-fwaitStart, ledger.Mark{}, 0)
		}
		switch res.mode {
		case modeLocal:
			// lib.Call records the follower's enter/exit events itself.
			return s.mon.lib.Call(t, name, args)
		case modeEmulated:
			// The follower never reaches libc for this call, so record the
			// pair here: enter back-dated to the rendezvous arrival, exit
			// when the emulated result lands.
			if obsRec != nil {
				obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
				obsRec.RecordIn(t.Fn(), obs.EvLibcExit, fv, t.TID(), name, 0, 0, res.ret)
			}
			t.SetErrno(res.errno)
			return res.ret
		case modeDetach:
			// The policy severed this follower; wind it down without a
			// fresh divergence panic.
			if obsRec != nil {
				obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
			}
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
		default:
			if obsRec != nil {
				obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
			}
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
		}
	case <-sl.detachCh:
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	case <-s.leaderDone:
		if sl.detached() {
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
		}
		// The leader already left the region: the follower is executing
		// calls the leader never made. The leader is no longer in the
		// region, so only the follower's own thread may be snapshotted.
		var snaps []obs.ThreadSnapshot
		if obsRec != nil {
			snaps = []obs.ThreadSnapshot{s.mon.snapshot("follower", t)}
		}
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmSequenceLength, CallIndex: s.calls.Load(), Function: s.fn,
			FollowerCall: name, Variant: VariantID(sl.id),
			Detail: fmt.Sprintf("follower issued %s after leader finished the region", name),
		}, snaps...)
		s.diverged.Store(true)
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
	}
}

// emulate copies the leader's output buffers into one follower's
// corresponding buffers, translating embedded pointers for the special
// category, and returns bytes copied plus whether a follower destination
// buffer was unwritable (AlarmEmulationFault raised). delta is the target
// slot's window shift — pointer rebasing lands in that slot's window.
// Copies run with monitor privileges (raw address-space access — the
// monitor's PKRU has every key enabled).
func (s *session) emulate(name string, leaderArgs, followerArgs []uint64, ret uint64, idx uint64, delta int64) (int, bool) {
	as := s.mon.m.AddressSpace()
	costs := s.mon.m.Costs()
	faulted := false
	arg := func(a []uint64, i int) uint64 {
		if i < len(a) {
			return a[i]
		}
		return 0
	}
	copyBuf := func(argIdx, n int) int {
		if n <= 0 {
			return 0
		}
		src := mem.Addr(arg(leaderArgs, argIdx))
		dst := mem.Addr(arg(followerArgs, argIdx))
		if src == 0 || dst == 0 {
			return 0
		}
		buf := make([]byte, n)
		if err := as.ReadAt(src, buf); err != nil {
			return 0
		}
		if err := as.WriteAt(dst, buf); err != nil {
			// The follower's destination buffer is unmapped or
			// unwritable — a corrupted follower. Attribute it precisely
			// so replay diffing can tell it apart from the generic
			// divergence the stale data would cause later.
			s.mon.raiseAlarm(Alarm{
				Reason: AlarmEmulationFault, CallIndex: idx, Function: s.fn,
				LeaderCall: name, Variant: VariantID(int(delta / s.delta)),
				Detail: fmt.Sprintf("emulation copy of %d bytes into follower buffer %#x failed: %v",
					n, dst, err),
			})
			s.diverged.Store(true)
			faulted = true
			return 0
		}
		_ = as.CopyTaint(dst, src, n)
		s.mon.m.ChargeThread(nil, costs.LockstepCopyPerByte*cyclesOf(n))
		if s.mon.opts.Policy == PolicyRollback {
			// The kernel-sourced bytes just landed in the follower's
			// buffer; log them so a rollback can replay the post-snapshot
			// libc tail (buf is freshly allocated per call — safe to keep).
			s.mon.redo.Append(idx, name, dst, buf)
		}
		return n
	}

	retN := 0
	if int64(ret) > 0 {
		retN = int(int64(ret))
	}
	copied := 0
	switch name {
	case "read", "recv":
		copied = copyBuf(1, retN)
	case "stat", "fstat":
		copied = copyBuf(1, 24)
	case "gettimeofday":
		copied = copyBuf(0, 16)
	case "time":
		copied = copyBuf(0, 8)
	case "localtime_r":
		copied = copyBuf(1, 64)
	case "getsockopt":
		copied = copyBuf(2, 8)
	case "ioctl":
		// Special: the third argument is emulated only when it looks like
		// a pointer into the process's address space (Section 3.3).
		if s.inLeaderSpace(mem.Addr(arg(leaderArgs, 2))) {
			copied = copyBuf(2, 8)
		}
	case "epoll_wait", "epoll_pwait":
		// Special: copy the events array; epoll_data entries that are
		// pointers into the leader's space must be rebased into the
		// follower's window (Section 3.3).
		n := retN
		src := mem.Addr(arg(leaderArgs, 1))
		dst := mem.Addr(arg(followerArgs, 1))
		total := 0
		for i := 0; i < n; i++ {
			var entry [16]byte
			if err := as.ReadAt(src+mem.Addr(i*16), entry[:]); err != nil {
				break
			}
			data := fromLE(entry[8:])
			if s.inLeaderSpace(mem.Addr(data)) {
				data = uint64(int64(data) + delta)
				toLE(entry[8:], data)
			}
			if err := as.WriteAt(dst+mem.Addr(i*16), entry[:]); err != nil {
				break
			}
			if s.mon.opts.Policy == PolicyRollback {
				s.mon.redo.Append(idx, name, dst+mem.Addr(i*16), append([]byte(nil), entry[:]...))
			}
			total += 16
		}
		s.mon.m.ChargeThread(nil, costs.LockstepCopyPerByte*cyclesOf(total))
		copied = total
	}
	return copied, faulted
}

// inLeaderSpace reports whether v falls inside the leader's image or heap —
// the "falls within the process's address space" test for special-category
// emulation.
func (s *session) inLeaderSpace(v mem.Addr) bool {
	img := s.mon.img
	if v >= img.Base && v < img.End() {
		return true
	}
	if h := s.mon.lib.Heap(0); h != nil {
		if v >= s.mon.leaderHeapBase() && v < s.mon.lib.HeapWatermark(0) {
			return true
		}
	}
	return false
}

// scalarMismatch compares the non-pointer arguments of a libc call between
// variants, returning the first differing pair.
func scalarMismatch(name string, leader, follower []uint64) (bad bool, l, f uint64) {
	mask := scalarArgMask(name)
	n := len(leader)
	if len(follower) < n {
		n = len(follower)
	}
	if len(leader) != len(follower) {
		return true, uint64(len(leader)), uint64(len(follower))
	}
	for i := 0; i < n && i < len(mask); i++ {
		if mask[i] && leader[i] != follower[i] {
			return true, leader[i], follower[i]
		}
	}
	return false, 0, 0
}

// ScalarArgMask returns, per argument position of a libc call, whether the
// value is a scalar (comparable across variants) as opposed to a pointer
// (whose value legitimately differs between the variants' non-overlapping
// address windows). Positions beyond the mask are not comparable. This is
// the rendezvous check's own table, exported so offline analysis
// (internal/obs/replay) applies the exact same pointer semantics when
// diffing a recorded leader stream against its follower stream.
func ScalarArgMask(name string) []bool { return scalarArgMask(name) }

// ScalarRet reports whether a libc call's return value is a scalar,
// comparable across variants. Allocation and buffer calls return pointers
// into the calling variant's own window, so their values differ between
// variants by construction.
func ScalarRet(name string) bool {
	switch name {
	case "malloc", "calloc", "realloc", "memcpy", "memset", "localtime_r":
		return false
	default:
		return true
	}
}

// scalarArgMask returns, per argument position, whether the value is a
// scalar (comparable across variants) as opposed to a pointer (whose value
// legitimately differs between non-overlapping address spaces).
func scalarArgMask(name string) []bool {
	switch name {
	case "open", "mkdir":
		return []bool{false, true}
	case "stat":
		return []bool{false, false} // path and stat buffer: both pointers
	case "close", "epoll_create", "socket", "random", "time", "free",
		"strlen", "atoi", "localtime_r":
		return []bool{false, false}
	case "read", "recv", "write", "send", "writev":
		return []bool{true, false, true}
	case "fstat":
		return []bool{true, false}
	case "gettimeofday":
		return []bool{false, true}
	case "sendfile":
		return []bool{true, true, false, true}
	case "bind", "listen", "connect", "shutdown":
		return []bool{true, true}
	case "setsockopt":
		return []bool{true, true, true}
	case "getsockopt", "ioctl":
		return []bool{true, true, false}
	case "epoll_ctl":
		return []bool{true, true, true, false}
	case "epoll_wait":
		return []bool{true, false, true, true}
	case "epoll_pwait":
		return []bool{true, false, true, true, true}
	case "malloc":
		return []bool{true}
	case "calloc":
		return []bool{true, true}
	case "realloc":
		return []bool{false, true}
	case "memcpy", "memset":
		return []bool{false, false, true}
	case "strcmp":
		return []bool{false, false}
	case "strncmp":
		return []bool{false, false, true}
	case "snprintf":
		return []bool{false, true, false}
	default:
		return nil
	}
}

func cyclesOf(n int) clock.Cycles {
	if n < 0 {
		return 0
	}
	return clock.Cycles(n)
}

func fromLE(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func toLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
