package core

import (
	"smvx/internal/obs"
	"smvx/internal/obs/ledger"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// ledgerTrampoline charges one interception's fixed entry cost (WRPKRU
// dance plus the optional stack pivot) to the cost ledger.
func (s *session) ledgerTrampoline(v obs.Variant, name string, costs clock.CostTable, pivoted bool) {
	lr := s.lr
	if lr == nil {
		return
	}
	c := costs.TrampolineEntry
	if pivoted {
		c += costs.StackPivot
	}
	lr.Add(ledger.PhaseTrampoline, v, ledger.ClassOf(name), c, ledger.Mark{}, 0)
}

// Intercept implements machine.Interposer: the MPK trampoline of Figure 4.
//
// Every patched PLT call lands here. The trampoline (1) disables MPK
// protection for the monitor's pages (WRPKRU), (2) pivots from the unsafe
// application stack to the thread's TLS safe stack so untrusted code cannot
// attack the monitor's frames, (3) runs the reference-monitor logic —
// passthrough outside a protected region, lockstep inside one — and
// (4) restores the stack and re-arms MPK on the way out. The two WRPKRU
// executions and the fixed pivot cost are charged per interception, which
// is what makes sMVX's per-libc-call overhead visible in Figure 7.
func (mo *Monitor) Intercept(t *machine.Thread, slot int, name string, args []uint64) uint64 {
	costs := mo.m.Costs()
	mo.m.ChargeThread(t, costs.TrampolineEntry)
	rec := mo.rec
	v := obs.VariantLeader
	if rec != nil {
		v = mo.variantOfThread(t)
	}

	// DEACTIVATE_MPK_PROT(): open the monitor's pages for this thread.
	oldPKRU := t.PKRU()
	t.WRPKRU(mo.monPKRU())
	if rec != nil {
		rec.Record(obs.EvPKRUWrite, v, t.TID(), "deactivate-prot", uint64(mo.monPKRU()), 0, 0)
	}

	// Switch stacks: the reference monitor and the actual libc call run on
	// the MPK-protected safe stack.
	var oldSP mem.Addr
	pivoted := false
	if !mo.opts.DisableSafeStack {
		mo.m.ChargeThread(t, costs.StackPivot)
		oldSP = t.SP()
		t.SetSP(mo.safeStackFor(t))
		pivoted = true
		if rec != nil {
			rec.Record(obs.EvStackPivot, v, t.TID(), name, uint64(oldSP), uint64(t.SP()), 0)
		}
	}
	defer func() {
		// On the way out — including a simulated crash unwinding through
		// here — restore the unsafe stack and ACTIVATE_MPK_PROT().
		if pivoted {
			t.SetSP(oldSP)
		}
		t.WRPKRU(oldPKRU)
		if rec != nil {
			rec.Record(obs.EvPKRUWrite, v, t.TID(), "activate-prot", uint64(oldPKRU), 0, 0)
		}
	}()

	mo.mu.Lock()
	s := mo.session
	quarantined := mo.quarantined[t.TID()]
	mo.mu.Unlock()

	if quarantined {
		// A detached follower (possibly resuming after a stall, possibly
		// orphaned past its region) may not reach the kernel unreplicated:
		// wind it down here.
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	}
	if s == nil {
		// Outside any protected region: plain interception, direct libc.
		return mo.lib.Call(t, name, args)
	}
	if t.TID() == s.leaderTID {
		s.ledgerTrampoline(obs.VariantLeader, name, costs, pivoted)
		return s.leaderCall(t, name, args)
	}
	if sl := s.slotByTID(t.TID()); sl != nil {
		s.ledgerTrampoline(obs.FollowerVariant(sl.id), name, costs, pivoted)
		return s.followerCall(t, sl, name, args)
	}
	// Unrelated thread (e.g. another worker): passthrough.
	return mo.lib.Call(t, name, args)
}
