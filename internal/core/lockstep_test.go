package core

import (
	"testing"
	"testing/quick"

	"smvx/internal/libc"
)

// TestScalarMaskCoverage: every simulated libc call has a scalar mask, and
// no mask marks a known pointer position as comparable.
func TestScalarMaskCoverage(t *testing.T) {
	// Positions that carry pointers per call signature.
	pointerArgs := map[string][]int{
		"open": {0}, "mkdir": {0}, "stat": {0, 1}, "fstat": {1},
		"read": {1}, "recv": {1}, "write": {1}, "send": {1}, "writev": {1},
		"gettimeofday": {0}, "time": {0}, "localtime_r": {0, 1},
		"getsockopt": {2}, "ioctl": {2}, "epoll_ctl": {3},
		"epoll_wait": {1}, "epoll_pwait": {1},
		"free": {0}, "realloc": {0}, "memcpy": {0, 1}, "memset": {0},
		"strlen": {0}, "strcmp": {0, 1}, "strncmp": {0, 1}, "atoi": {0},
		"snprintf": {0, 2}, "sendfile": {2},
	}
	for _, name := range libc.Names() {
		mask := scalarArgMask(name)
		for _, pos := range pointerArgs[name] {
			if pos < len(mask) && mask[pos] {
				t.Errorf("%s: arg %d is a pointer but marked scalar-comparable", name, pos)
			}
		}
	}
}

// TestScalarMismatchProperty: identical argument vectors never mismatch;
// different lengths always do.
func TestScalarMismatchProperty(t *testing.T) {
	names := libc.Names()
	f := func(nameIdx uint8, a, b, c uint64) bool {
		name := names[int(nameIdx)%len(names)]
		args := []uint64{a, b, c}
		if bad, _, _ := scalarMismatch(name, args, args); bad {
			return false
		}
		if bad, _, _ := scalarMismatch(name, args, args[:2]); !bad {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestScalarMismatchDetectsScalarChange: flipping a scalar-masked argument
// is always flagged.
func TestScalarMismatchDetectsScalarChange(t *testing.T) {
	for _, name := range libc.Names() {
		mask := scalarArgMask(name)
		for i, isScalar := range mask {
			if !isScalar {
				continue
			}
			leader := []uint64{10, 20, 30, 40, 50}[:len(mask)]
			follower := append([]uint64(nil), leader...)
			follower[i] ^= 0xFF
			if bad, _, _ := scalarMismatch(name, leader, follower); !bad {
				t.Errorf("%s: scalar arg %d change undetected", name, i)
			}
		}
	}
}

// TestScalarMismatchIgnoresPointerChange: flipping a pointer-position
// argument (legitimately different across variants) is never flagged.
func TestScalarMismatchIgnoresPointerChange(t *testing.T) {
	for _, name := range libc.Names() {
		mask := scalarArgMask(name)
		for i, isScalar := range mask {
			if isScalar {
				continue
			}
			leader := []uint64{10, 20, 30, 40, 50}[:len(mask)]
			follower := append([]uint64(nil), leader...)
			follower[i] += 0x2000_0000_0000 // the follower-window delta
			if bad, l, f := scalarMismatch(name, leader, follower); bad {
				t.Errorf("%s: pointer arg %d flagged (%#x vs %#x)", name, i, l, f)
			}
		}
	}
}
