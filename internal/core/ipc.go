package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The lockstep IPC ring carries one framed record per follower libc call:
//
//	uvarint  name length
//	bytes    name
//	uvarint  argument count
//	uvarint  each argument value
//
// Framing mirrors the shared-memory ring the paper's monitor halves share
// (Section 3.2): the leader decodes what crossed the ring rather than
// trusting in-process pointers, so a corrupted record surfaces as a
// divergence instead of undefined behaviour.

// Decode limits: generous bounds no real libc call approaches, so a
// corrupt length prefix cannot drive a huge allocation.
const (
	maxCallNameLen = 256
	maxCallArgs    = 64
)

// encodeCallRecord frames one follower call for the IPC ring.
func encodeCallRecord(name string, args []uint64) []byte {
	buf := make([]byte, 0, 2+len(name)+2+len(args)*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendUvarint(buf, a)
	}
	return buf
}

// errCorruptCallRecord is wrapped by every decodeCallRecord failure.
var errCorruptCallRecord = errors.New("corrupt call record")

// readUvarint decodes one canonical uvarint. It returns w <= 0 for a
// truncated or overlong value and additionally rejects non-minimal
// encodings (a trailing 0x00 continuation byte), so every record has
// exactly one wire form and byte comparison equals semantic comparison.
func readUvarint(wire []byte) (uint64, int) {
	v, w := binary.Uvarint(wire)
	if w > 1 && wire[w-1] == 0 {
		return 0, -w
	}
	return v, w
}

// decodeCallRecord parses a framed call record. It never panics on
// arbitrary input (fuzzed) and rejects trailing garbage.
func decodeCallRecord(wire []byte) (name string, args []uint64, err error) {
	n, w := readUvarint(wire)
	if w <= 0 {
		return "", nil, fmt.Errorf("%w: bad name length", errCorruptCallRecord)
	}
	wire = wire[w:]
	if n > maxCallNameLen {
		return "", nil, fmt.Errorf("%w: name length %d exceeds %d", errCorruptCallRecord, n, maxCallNameLen)
	}
	if uint64(len(wire)) < n {
		return "", nil, fmt.Errorf("%w: name truncated", errCorruptCallRecord)
	}
	name = string(wire[:n])
	wire = wire[n:]
	count, w := readUvarint(wire)
	if w <= 0 {
		return "", nil, fmt.Errorf("%w: bad argument count", errCorruptCallRecord)
	}
	wire = wire[w:]
	if count > maxCallArgs {
		return "", nil, fmt.Errorf("%w: argument count %d exceeds %d", errCorruptCallRecord, count, maxCallArgs)
	}
	if count > 0 {
		args = make([]uint64, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		v, w := readUvarint(wire)
		if w <= 0 {
			return "", nil, fmt.Errorf("%w: argument %d truncated", errCorruptCallRecord, i)
		}
		wire = wire[w:]
		args = append(args, v)
	}
	if len(wire) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", errCorruptCallRecord, len(wire))
	}
	return name, args, nil
}
