package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"smvx/internal/sim/kernel"
)

// The lockstep IPC ring carries one framed record per follower libc call:
//
//	uvarint  name length
//	bytes    name
//	uvarint  argument count
//	uvarint  each argument value
//
// Framing mirrors the shared-memory ring the paper's monitor halves share
// (Section 3.2): the leader decodes what crossed the ring rather than
// trusting in-process pointers, so a corrupted record surfaces as a
// divergence instead of undefined behaviour.

// Decode limits: generous bounds no real libc call approaches, so a
// corrupt length prefix cannot drive a huge allocation.
const (
	maxCallNameLen = 256
	maxCallArgs    = 64
)

// encodeCallRecord frames one follower call for the IPC ring.
func encodeCallRecord(name string, args []uint64) []byte {
	buf := make([]byte, 0, 2+len(name)+2+len(args)*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendUvarint(buf, a)
	}
	return buf
}

// errCorruptCallRecord is wrapped by every decodeCallRecord failure.
var errCorruptCallRecord = errors.New("corrupt call record")

// readUvarint decodes one canonical uvarint. It returns w <= 0 for a
// truncated or overlong value and additionally rejects non-minimal
// encodings (a trailing 0x00 continuation byte), so every record has
// exactly one wire form and byte comparison equals semantic comparison.
func readUvarint(wire []byte) (uint64, int) {
	v, w := binary.Uvarint(wire)
	if w > 1 && wire[w-1] == 0 {
		return 0, -w
	}
	return v, w
}

// decodeCallRecord parses a framed call record. It never panics on
// arbitrary input (fuzzed) and rejects trailing garbage.
func decodeCallRecord(wire []byte) (name string, args []uint64, err error) {
	n, w := readUvarint(wire)
	if w <= 0 {
		return "", nil, fmt.Errorf("%w: bad name length", errCorruptCallRecord)
	}
	wire = wire[w:]
	if n > maxCallNameLen {
		return "", nil, fmt.Errorf("%w: name length %d exceeds %d", errCorruptCallRecord, n, maxCallNameLen)
	}
	if uint64(len(wire)) < n {
		return "", nil, fmt.Errorf("%w: name truncated", errCorruptCallRecord)
	}
	name = string(wire[:n])
	wire = wire[n:]
	count, w := readUvarint(wire)
	if w <= 0 {
		return "", nil, fmt.Errorf("%w: bad argument count", errCorruptCallRecord)
	}
	wire = wire[w:]
	if count > maxCallArgs {
		return "", nil, fmt.Errorf("%w: argument count %d exceeds %d", errCorruptCallRecord, count, maxCallArgs)
	}
	if count > 0 {
		args = make([]uint64, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		v, w := readUvarint(wire)
		if w <= 0 {
			return "", nil, fmt.Errorf("%w: argument %d truncated", errCorruptCallRecord, i)
		}
		wire = wire[w:]
		args = append(args, v)
	}
	if len(wire) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", errCorruptCallRecord, len(wire))
	}
	return name, args, nil
}

// Pipelined lockstep pushes results the other way: the leader frames its
// return value, errno, and output-buffer snapshots into a result record
// that rides the rendezvous ring, and the follower decodes what crossed
// the ring before applying it — the same decode-before-trust discipline
// as the call record above.
//
//	uvarint  return value
//	uvarint  errno
//	uvarint  buffer count
//	per buffer:
//	  uvarint  argument index
//	  uvarint  byte length
//	  bytes    snapshot
const (
	maxResultBufs    = 8
	maxResultBufLen  = 1 << 20
	errnoResultLimit = 1 << 16
)

// errCorruptResultRecord is wrapped by every decodeResultRecord failure.
var errCorruptResultRecord = errors.New("corrupt result record")

// encodeResultRecord frames a pipelined call's result for the ring.
func encodeResultRecord(ret uint64, errno kernel.Errno, bufs []emuBuf) []byte {
	n := 3 * binary.MaxVarintLen64
	for _, b := range bufs {
		n += 2*binary.MaxVarintLen64 + len(b.data)
	}
	wire := make([]byte, 0, n)
	wire = binary.AppendUvarint(wire, ret)
	wire = binary.AppendUvarint(wire, uint64(errno))
	wire = binary.AppendUvarint(wire, uint64(len(bufs)))
	for _, b := range bufs {
		wire = binary.AppendUvarint(wire, uint64(b.argIdx))
		wire = binary.AppendUvarint(wire, uint64(len(b.data)))
		wire = append(wire, b.data...)
	}
	return wire
}

// decodeResultRecord parses a framed result record. Like decodeCallRecord
// it never panics on arbitrary input and rejects trailing garbage.
func decodeResultRecord(wire []byte) (ret uint64, errno kernel.Errno, bufs []emuBuf, err error) {
	ret, w := readUvarint(wire)
	if w <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad return value", errCorruptResultRecord)
	}
	wire = wire[w:]
	e, w := readUvarint(wire)
	if w <= 0 || e > errnoResultLimit {
		return 0, 0, nil, fmt.Errorf("%w: bad errno", errCorruptResultRecord)
	}
	wire = wire[w:]
	count, w := readUvarint(wire)
	if w <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad buffer count", errCorruptResultRecord)
	}
	wire = wire[w:]
	if count > maxResultBufs {
		return 0, 0, nil, fmt.Errorf("%w: buffer count %d exceeds %d", errCorruptResultRecord, count, maxResultBufs)
	}
	for i := uint64(0); i < count; i++ {
		idx, w := readUvarint(wire)
		if w <= 0 || idx > maxCallArgs {
			return 0, 0, nil, fmt.Errorf("%w: buffer %d index", errCorruptResultRecord, i)
		}
		wire = wire[w:]
		n, w := readUvarint(wire)
		if w <= 0 {
			return 0, 0, nil, fmt.Errorf("%w: buffer %d length", errCorruptResultRecord, i)
		}
		wire = wire[w:]
		if n > maxResultBufLen {
			return 0, 0, nil, fmt.Errorf("%w: buffer %d length %d exceeds %d", errCorruptResultRecord, i, n, maxResultBufLen)
		}
		if uint64(len(wire)) < n {
			return 0, 0, nil, fmt.Errorf("%w: buffer %d truncated", errCorruptResultRecord, i)
		}
		data := make([]byte, n)
		copy(data, wire[:n])
		wire = wire[n:]
		bufs = append(bufs, emuBuf{argIdx: int(idx), data: data})
	}
	if len(wire) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", errCorruptResultRecord, len(wire))
	}
	return ret, kernel.Errno(e), bufs, nil
}
