package core

// Pipelined lockstep: the bounded run-ahead rendezvous ring.
//
// Strict lockstep (lockstep.go) stops the leader at every libc call until
// the followers arrive — rendezvous RTT dominates protected-region
// overhead. In pipelined mode the roles invert: the leader executes its
// call, publishes a framed record (the canonical-varint IPC codec plus a
// result snapshot) on each follower slot's bounded ring, and keeps running
// up to LagWindow unverified calls ahead; every follower drains its own
// ring asynchronously and performs the exact same decode-before-compare
// divergence checks at drain time, attributing any alarm to the ordinal
// the leader stamped on the record. The three emulation categories become
// sync classes (libc.SyncClassOf): results-emulation calls pipeline
// freely, local calls pipeline with no result payload, and state-changing
// or externally-visible calls are hard barriers — the leader drains every
// ring and completes a full rendezvous (pairwise with one live slot, by
// majority vote with more) before the call's effects leave the process.

import (
	"fmt"
	"time"

	"smvx/internal/libc"
	"smvx/internal/obs"
	"smvx/internal/obs/ledger"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// LockstepMode selects the rendezvous discipline for protected regions.
type LockstepMode int

const (
	// LockstepStrict is the paper's stop-and-wait lockstep: the leader
	// blocks at every libc call until the followers catch up.
	LockstepStrict LockstepMode = iota
	// LockstepPipelined decouples the variants over the bounded
	// rendezvous rings with drain-time verification and category-aware
	// sync barriers.
	LockstepPipelined
)

// String names the mode as accepted by ParseLockstepMode.
func (m LockstepMode) String() string {
	switch m {
	case LockstepStrict:
		return "strict"
	case LockstepPipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("lockstep(%d)", int(m))
	}
}

// ParseLockstepMode maps a -lockstep flag value to a mode. The empty
// string selects strict, the paper's default.
func ParseLockstepMode(s string) (LockstepMode, error) {
	switch s {
	case "", "strict":
		return LockstepStrict, nil
	case "pipelined":
		return LockstepPipelined, nil
	default:
		return 0, fmt.Errorf("unknown lockstep mode %q (strict, pipelined)", s)
	}
}

// DefaultLagWindow bounds the pipelined leader's run-ahead when no
// WithLagWindow option is given.
const DefaultLagWindow = 16

// pipelineGrace is the real-time window the leader grants a tripped
// watchdog before concluding a follower is wedged off-CPU: a stalled
// but still-charging follower detects its own blown deadline at drain
// time (with the precise originating ordinal) well inside this window,
// so only a follower that charges nothing at all reaches the leader-side
// timeout path.
const pipelineGrace = 200 * time.Millisecond

// leaderRecord is one entry on a pipelined rendezvous ring: the
// leader's half of a libc call, published ahead of verification. wire is
// the canonical-varint call record (name + args); result — present for
// pipelined-class calls — frames the return value, errno, and output
// buffer snapshots captured at call time. The follower decodes both
// rather than trusting in-process fields. Barrier records carry a reply
// channel instead: the follower hands its own callRecord back and the
// set completes a full rendezvous.
type leaderRecord struct {
	idx     uint64 // 1-based libc-call ordinal, stamped by the leader
	name    string
	wire    []byte
	cat     libc.Category
	barrier bool
	local   bool
	result  []byte
	reply   chan *callRecord
}

// emuBuf is one output-buffer snapshot inside a result record: the bytes
// the leader's call wrote through its argIdx-th pointer argument.
type emuBuf struct {
	argIdx int
	data   []byte
}

// appendRecord outcomes.
type appendVerdict int

const (
	appendOK appendVerdict = iota
	appendDead
	appendDetached
	appendTimedOut
)

// leaderCallPipelined runs the leader's side of one pipelined libc call:
// classify, execute, publish on every live slot's ring (blocking only when
// a lag window is exhausted), and barrier where the effects become
// externally visible.
func (s *session) leaderCallPipelined(t *machine.Thread, name string, args []uint64) uint64 {
	idx := s.calls.Add(1)
	att := s.attached()
	if len(att) == 0 {
		// Degraded single-variant mode after a policy detach. Under
		// rollback the detach means a follower was severed mid-region —
		// unwind instead of running un-replicated.
		s.maybeAbortRegion(t, name, idx)
		return s.mon.lib.Call(t, name, args)
	}
	live := att[:0:0]
	anyDead := false
	for _, sl := range att {
		select {
		case <-sl.dead:
			anyDead = true
		default:
			live = append(live, sl)
		}
	}
	if anyDead {
		// A follower died mid-region; the variant waiter raises the alarm.
		s.diverged.Store(true)
	}
	if len(live) == 0 {
		// Under rollback the region is unwound here (the leader's
		// remaining control flow is suspect); otherwise the leader
		// continues un-replicated (as in strict mode).
		s.maybeAbortRegion(t, name, idx)
		return s.mon.lib.Call(t, name, args)
	}
	if libc.SyncClassOf(name) == libc.SyncBarrier {
		return s.leaderBarrier(t, name, args, idx, live)
	}
	if len(live) == 1 {
		return s.leaderPipelinedOne(t, name, args, idx, live[0])
	}
	return s.leaderPipelinedMany(t, name, args, idx, live)
}

// leaderPipelinedOne publishes one non-barrier call to the single live
// slot — the pair-shaped run-ahead discipline, byte for byte at
// Variants=2.
func (s *session) leaderPipelinedOne(t *machine.Thread, name string, args []uint64, idx uint64, sl *followerSlot) uint64 {
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepEnqueue)
	// Execute before publishing: the record carries the concrete result
	// (and output-buffer snapshots) the follower will verify and apply.
	// Snapshots are taken now, so the leader overwriting the buffer
	// while running ahead cannot corrupt the follower's copy.
	ret := s.mon.lib.Call(t, name, args)
	errno := t.Errno()
	mshMark := s.lr.Mark()
	rec := &leaderRecord{
		idx:  idx,
		name: name,
		wire: encodeCallRecord(name, args),
		cat:  libc.CategoryOf(name),
	}
	if libc.SyncClassOf(name) == libc.SyncLocal {
		rec.local = true
	} else {
		rec.result = encodeResultRecord(ret, errno, s.captureOutputs(name, args, ret, sl.delta))
	}
	lr := s.lr
	var cls ledger.Class
	if lr != nil {
		cls = ledger.ClassOf(name)
		lr.Add(ledger.PhaseMarshal, obs.VariantLeader, cls, 0, mshMark,
			uint64(len(rec.wire)+len(rec.result)))
	}
	enqStart := s.mon.m.Counter().Cycles()
	switch s.appendRecord(t, sl, rec) {
	case appendDead:
		s.diverged.Store(true)
		s.maybeAbortRegion(t, name, idx)
	case appendTimedOut:
		s.enqueueTimedOut(t, sl, name, idx)
	case appendDetached:
		// The follower severed itself at drain time; bookkeeping and the
		// alarm already happened on its goroutine. Rollback unwinds here.
		s.maybeAbortRegion(t, name, idx)
	case appendOK:
		now := s.mon.m.Counter().Cycles()
		if obsRec := s.mon.rec; obsRec != nil {
			m := obsRec.Metrics()
			m.Observe(obs.MetricRendezvousLeaderCycles,
				uint64(costs.LockstepEnqueue+(now-enqStart)))
			m.SetGauge(obs.MetricPipelineDepth, float64(len(sl.ring)))
			obsRec.ObserveSeries(obs.SeriesRendezvous,
				uint64(costs.LockstepEnqueue+(now-enqStart)))
			obsRec.ObserveSeries(obs.SeriesPipelineDepth, uint64(len(sl.ring)))
		}
		if lr != nil {
			// Enqueue+wait sum to the rendezvous.leader.cycles observation
			// above — the ledger/histogram reconciliation invariant.
			lr.Add(ledger.PhaseEnqueue, obs.VariantLeader, cls,
				costs.LockstepEnqueue, ledger.Mark{}, 0)
			lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
				now-enqStart, ledger.Mark{}, 0)
		}
	}
	return ret
}

// leaderPipelinedMany publishes one non-barrier call to every live slot's
// ring. The call executes once; each slot receives its own record with
// output snapshots rebased into that slot's window.
func (s *session) leaderPipelinedMany(t *machine.Thread, name string, args []uint64, idx uint64, live []*followerSlot) uint64 {
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepEnqueue*clock.Cycles(len(live)))
	ret := s.mon.lib.Call(t, name, args)
	errno := t.Errno()
	lr := s.lr
	var cls ledger.Class
	if lr != nil {
		cls = ledger.ClassOf(name)
	}
	mshMark := s.lr.Mark()
	wire := encodeCallRecord(name, args)
	local := libc.SyncClassOf(name) == libc.SyncLocal
	enqStart := s.mon.m.Counter().Cycles()
	anyOK := false
	maxDepth := 0
	for i, sl := range live {
		if i > 0 {
			mshMark = s.lr.Mark()
		}
		rec := &leaderRecord{idx: idx, name: name, wire: wire, cat: libc.CategoryOf(name)}
		if local {
			rec.local = true
		} else {
			rec.result = encodeResultRecord(ret, errno, s.captureOutputs(name, args, ret, sl.delta))
		}
		if lr != nil {
			lr.Add(ledger.PhaseMarshal, obs.VariantLeader, cls, 0, mshMark,
				uint64(len(rec.wire)+len(rec.result)))
		}
		switch s.appendRecord(t, sl, rec) {
		case appendDead:
			s.diverged.Store(true)
		case appendTimedOut:
			s.enqueueTimedOut(t, sl, name, idx)
		case appendDetached:
			// Drain-time bookkeeping already happened on the slot's
			// goroutine.
		case appendOK:
			anyOK = true
			if d := len(sl.ring); d > maxDepth {
				maxDepth = d
			}
		}
	}
	if !anyOK {
		s.maybeAbortRegion(t, name, idx)
		return ret
	}
	now := s.mon.m.Counter().Cycles()
	if obsRec := s.mon.rec; obsRec != nil {
		m := obsRec.Metrics()
		m.Observe(obs.MetricRendezvousLeaderCycles,
			uint64(costs.LockstepEnqueue*clock.Cycles(len(live))+(now-enqStart)))
		m.SetGauge(obs.MetricPipelineDepth, float64(maxDepth))
		obsRec.ObserveSeries(obs.SeriesRendezvous,
			uint64(costs.LockstepEnqueue*clock.Cycles(len(live))+(now-enqStart)))
		obsRec.ObserveSeries(obs.SeriesPipelineDepth, uint64(maxDepth))
	}
	if lr != nil {
		lr.Add(ledger.PhaseEnqueue, obs.VariantLeader, cls,
			costs.LockstepEnqueue*clock.Cycles(len(live)), ledger.Mark{}, 0)
		lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
			now-enqStart, ledger.Mark{}, 0)
	}
	return ret
}

// appendRecord publishes one record on a slot's ring, blocking when its
// lag window is exhausted — the bounded run-ahead backpressure. The wait
// is parked under waitingSince like a strict rendezvous so the watchdog
// can see it.
func (s *session) appendRecord(t *machine.Thread, sl *followerSlot, rec *leaderRecord) appendVerdict {
	select {
	case <-sl.dead:
		return appendDead
	case <-sl.detachCh:
		return appendDetached
	default:
	}
	select {
	case sl.ring <- rec:
		return appendOK
	default:
	}
	waitStart := s.mon.m.Counter().Cycles()
	s.waitingSince.Store(int64(waitStart) + 1)
	defer s.waitingSince.Store(0)
	unblocked := func() appendVerdict {
		now := s.mon.m.Counter().Cycles()
		t.AddWaitCycles(now - waitStart)
		if obsRec := s.mon.rec; obsRec != nil {
			obsRec.Metrics().Observe("lockstep.wait.cycles", uint64(now-waitStart))
		}
		return appendOK
	}
	select {
	case sl.ring <- rec:
		return unblocked()
	case <-sl.dead:
		return appendDead
	case <-sl.detachCh:
		return appendDetached
	case <-s.timedOut:
		// Grace: a stalled-but-charging follower raises its own timeout
		// (or frees a slot) within this window; see pipelineGrace.
		select {
		case sl.ring <- rec:
			return unblocked()
		case <-sl.dead:
			return appendDead
		case <-sl.detachCh:
			return appendDetached
		case <-time.After(pipelineGrace):
			return appendTimedOut
		}
	}
}

// enqueueTimedOut handles a blown deadline while the leader was parked on
// a full ring: the call itself already executed, so — unlike
// leaderTimedOut — there is nothing to re-run, only the alarm and the
// policy detach.
func (s *session) enqueueTimedOut(t *machine.Thread, sl *followerSlot, name string, idx uint64) {
	deadline := s.mon.opts.RendezvousDeadline
	var snaps []obs.ThreadSnapshot
	if s.mon.rec != nil {
		snaps = []obs.ThreadSnapshot{s.mon.snapshot("leader", t)}
	}
	s.mon.raiseAlarm(Alarm{
		Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
		LeaderCall: name, Variant: VariantID(sl.id),
		Detail: fmt.Sprintf("follower stopped draining the rendezvous ring inside the %d-cycle deadline",
			deadline),
	}, snaps...)
	s.diverged.Store(true)
	s.mon.rec.Metrics().Inc("rendezvous.timeout")
	s.mon.detachFollower(s, sl, "rendezvous-timeout")
}

// leaderBarrier completes a hard sync point: publish the barrier record to
// every live ring, wait for each follower to drain everything before it
// and hand back its own callRecord, then run the full rendezvous —
// compare (pairwise or by vote), execute, emulate — before the call's
// effects become externally visible.
func (s *session) leaderBarrier(t *machine.Thread, name string, args []uint64, idx uint64, live []*followerSlot) uint64 {
	if len(live) == 1 {
		return s.leaderBarrierOne(t, name, args, idx, live[0])
	}
	return s.leaderBarrierMany(t, name, args, idx, live)
}

// leaderBarrierOne is the pair-shaped barrier against the single live
// slot, byte for byte at Variants=2.
func (s *session) leaderBarrierOne(t *machine.Thread, name string, args []uint64, idx uint64, sl *followerSlot) uint64 {
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepRendezvous)
	obsRec := s.mon.rec
	var span obs.RendezvousSpan
	if obsRec != nil {
		obsRec.Metrics().Inc(obs.MetricLockstepBarrier)
		span = obsRec.BeginRendezvousSpan(obs.VariantLeader, t.TID(), name,
			uint64(libc.CategoryOf(name)))
	}
	mshMark := s.lr.Mark()
	rec := &leaderRecord{
		idx: idx, name: name, wire: encodeCallRecord(name, args),
		cat: libc.CategoryOf(name), barrier: true,
		reply: make(chan *callRecord, 1),
	}
	if lr := s.lr; lr != nil {
		lr.Add(ledger.PhaseMarshal, obs.VariantLeader, ledger.ClassOf(name),
			0, mshMark, uint64(len(rec.wire)))
	}
	waitStart := s.mon.m.Counter().Cycles()
	switch s.appendRecord(t, sl, rec) {
	case appendDead:
		s.diverged.Store(true)
		s.maybeAbortRegion(t, name, idx)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	case appendDetached:
		s.maybeAbortRegion(t, name, idx)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	case appendTimedOut:
		ret := s.leaderTimedOut(t, name, args, sl, nil, idx, 0)
		span.End(ret)
		return ret
	}

	paired := func(frec *callRecord) uint64 {
		s.waitingSince.Store(0)
		now := s.mon.m.Counter().Cycles()
		t.AddWaitCycles(now - waitStart)
		if obsRec != nil {
			obsRec.Metrics().Observe("lockstep.wait.cycles", uint64(now-waitStart))
			obsRec.Metrics().Observe(obs.MetricRendezvousLeaderCycles,
				uint64(costs.LockstepRendezvous+(now-waitStart)))
			obsRec.ObserveSeries(obs.SeriesRendezvous,
				uint64(costs.LockstepRendezvous+(now-waitStart)))
		}
		if lr := s.lr; lr != nil {
			// Barrier+wait sum to the rendezvous.leader.cycles observation
			// above; the wait started before the ring append, so it folds
			// in any backpressure the barrier record hit.
			cls := ledger.ClassOf(name)
			lr.Add(ledger.PhaseBarrier, obs.VariantLeader, cls,
				costs.LockstepRendezvous, ledger.Mark{}, 0)
			lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
				now-waitStart, ledger.Mark{}, 0)
		}
		if d := s.mon.opts.RendezvousDeadline; d > 0 && (frec.lag > d || now-waitStart > d) {
			// Backstop: the follower self-checks its lag at drain time,
			// so this only fires on pathological multi-thread charging.
			late := now - waitStart
			if frec.lag > d {
				late = frec.lag
			}
			return s.leaderTimedOut(t, name, args, sl, frec, idx, late)
		}
		return s.leaderPaired(t, name, args, sl, frec, idx)
	}

	s.waitingSince.Store(int64(waitStart) + 1)
	defer s.waitingSince.Store(0)
	select {
	case frec := <-rec.reply:
		ret := paired(frec)
		span.End(ret)
		return ret
	case <-sl.dead:
		s.diverged.Store(true)
		s.maybeAbortRegion(t, name, idx)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	case <-sl.detachCh:
		s.maybeAbortRegion(t, name, idx)
		ret := s.mon.lib.Call(t, name, args)
		span.End(ret)
		return ret
	case <-s.timedOut:
		// Same grace as appendRecord: only a zero-charging follower gets
		// past the reply/death cases here.
		select {
		case frec := <-rec.reply:
			ret := paired(frec)
			span.End(ret)
			return ret
		case <-sl.dead:
			s.diverged.Store(true)
			s.maybeAbortRegion(t, name, idx)
			ret := s.mon.lib.Call(t, name, args)
			span.End(ret)
			return ret
		case <-sl.detachCh:
			s.maybeAbortRegion(t, name, idx)
			ret := s.mon.lib.Call(t, name, args)
			span.End(ret)
			return ret
		case <-time.After(pipelineGrace):
			ret := s.leaderTimedOut(t, name, args, sl, nil, idx, 0)
			span.End(ret)
			return ret
		}
	}
}

// leaderBarrierMany publishes the barrier record to every live slot's
// ring, collects each slot's callRecord, and resolves by majority vote.
func (s *session) leaderBarrierMany(t *machine.Thread, name string, args []uint64, idx uint64, live []*followerSlot) uint64 {
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepRendezvous*clock.Cycles(len(live)))
	obsRec := s.mon.rec
	var span obs.RendezvousSpan
	if obsRec != nil {
		obsRec.Metrics().Inc(obs.MetricLockstepBarrier)
		span = obsRec.BeginRendezvousSpan(obs.VariantLeader, t.TID(), name,
			uint64(libc.CategoryOf(name)))
	}
	waitStart := s.mon.m.Counter().Cycles()
	type published struct {
		sl  *followerSlot
		rec *leaderRecord
	}
	pubs := make([]published, 0, len(live))
	for _, sl := range live {
		mshMark := s.lr.Mark()
		rec := &leaderRecord{
			idx: idx, name: name, wire: encodeCallRecord(name, args),
			cat: libc.CategoryOf(name), barrier: true,
			reply: make(chan *callRecord, 1),
		}
		if lr := s.lr; lr != nil {
			lr.Add(ledger.PhaseMarshal, obs.VariantLeader, ledger.ClassOf(name),
				0, mshMark, uint64(len(rec.wire)))
		}
		switch s.appendRecord(t, sl, rec) {
		case appendDead:
			s.diverged.Store(true)
		case appendDetached:
		case appendTimedOut:
			s.enqueueTimedOut(t, sl, name, idx)
		case appendOK:
			pubs = append(pubs, published{sl: sl, rec: rec})
		}
	}

	s.waitingSince.Store(int64(waitStart) + 1)
	arrivals := make([]slotArrival, 0, len(pubs))
	graced := false
	for _, p := range pubs {
		var frec *callRecord
		if !graced {
			select {
			case frec = <-p.rec.reply:
			case <-p.sl.dead:
				s.diverged.Store(true)
			case <-p.sl.detachCh:
			case <-s.timedOut:
				graced = true
			}
		}
		if frec == nil && graced {
			select {
			case frec = <-p.rec.reply:
			case <-p.sl.dead:
				s.diverged.Store(true)
			case <-p.sl.detachCh:
			case <-time.After(pipelineGrace):
				s.mon.raiseAlarm(Alarm{
					Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
					LeaderCall: name, Variant: VariantID(p.sl.id),
					Detail: fmt.Sprintf("variant %d missed the %d-cycle rendezvous deadline at a barrier",
						p.sl.id, s.mon.opts.RendezvousDeadline),
				})
				s.diverged.Store(true)
				s.mon.rec.Metrics().Inc("rendezvous.timeout")
				s.mon.detachFollower(s, p.sl, "rendezvous-timeout")
			}
		}
		if frec != nil {
			arrivals = append(arrivals, slotArrival{slot: p.sl, rec: frec})
		}
	}
	s.waitingSince.Store(0)
	now := s.mon.m.Counter().Cycles()
	t.AddWaitCycles(now - waitStart)
	if obsRec != nil {
		obsRec.Metrics().Observe("lockstep.wait.cycles", uint64(now-waitStart))
		obsRec.Metrics().Observe(obs.MetricRendezvousLeaderCycles,
			uint64(costs.LockstepRendezvous*clock.Cycles(len(live))+(now-waitStart)))
		obsRec.ObserveSeries(obs.SeriesRendezvous,
			uint64(costs.LockstepRendezvous*clock.Cycles(len(live))+(now-waitStart)))
	}
	if lr := s.lr; lr != nil {
		cls := ledger.ClassOf(name)
		lr.Add(ledger.PhaseBarrier, obs.VariantLeader, cls,
			costs.LockstepRendezvous*clock.Cycles(len(live)), ledger.Mark{}, 0)
		lr.Add(ledger.PhaseWait, obs.VariantLeader, cls,
			now-waitStart, ledger.Mark{}, 0)
	}
	// Deadline verdicts per arrival, as in the strict N-way rendezvous.
	if d := s.mon.opts.RendezvousDeadline; d > 0 {
		kept := arrivals[:0]
		for _, a := range arrivals {
			if a.rec.lag > d {
				s.mon.raiseAlarm(Alarm{
					Reason: AlarmRendezvousTimeout, CallIndex: idx, Function: s.fn,
					LeaderCall: name, FollowerCall: a.rec.name, Variant: VariantID(a.slot.id),
					Detail: fmt.Sprintf("variant %d arrived %d cycles into a %d-cycle rendezvous deadline",
						a.slot.id, a.rec.lag, d),
				}, s.rendezvousSnapshots(t, a.rec)...)
				s.diverged.Store(true)
				s.mon.rec.Metrics().Inc("rendezvous.timeout")
				s.rejectFollower(a.slot, a.rec, "rendezvous-timeout")
				continue
			}
			kept = append(kept, a)
		}
		arrivals = kept
	}
	ret := s.voteResolve(t, name, args, arrivals, idx)
	span.End(ret)
	return ret
}

// followerCallPipelined runs one follower slot's side: drain the next
// leader record from the slot's ring and verify it — the strict
// rendezvous's decode-before-compare checks, moved to drain time and
// attributed to the ordinal the leader stamped on the record.
func (s *session) followerCallPipelined(t *machine.Thread, sl *followerSlot, name string, args []uint64) uint64 {
	fv := obs.FollowerVariant(sl.id)
	costs := s.mon.m.Costs()
	s.mon.m.ChargeThread(t, costs.LockstepEnqueue)
	cyc := t.UserCycles()
	lag := cyc - sl.fCycles
	sl.fCycles = cyc
	// The deterministic deadline verdict lives on the follower in
	// pipelined mode: at every drain it knows its own lag and the exact
	// ordinal of the call that stalled, where the leader — running ahead
	// — could only attribute a timeout to whatever barrier it is parked
	// on.
	if d := s.mon.opts.RendezvousDeadline; d > 0 && lag > d {
		s.followerTimedOut(t, sl, name, sl.drained+1, lag) // never returns
	}
	lr := s.lr
	var cls ledger.Class
	var dqStart clock.Cycles
	if lr != nil {
		cls = ledger.ClassOf(name)
		lr.Add(ledger.PhaseDrain, fv, cls,
			costs.LockstepEnqueue, ledger.Mark{}, 0)
		dqStart = s.mon.m.Counter().Cycles()
	}
	rec := s.dequeueRecord(t, sl, name) // panics on detach / sequence overrun
	sl.drained++
	if lr != nil {
		lr.Add(ledger.PhaseWait, fv, cls,
			s.mon.m.Counter().Cycles()-dqStart, ledger.Mark{}, 0)
	}

	obsRec := s.mon.rec
	var arriveTS clock.Cycles
	var a0, a1 uint64
	if obsRec != nil {
		arriveTS = s.mon.m.Counter().Cycles()
		if len(args) > 0 {
			a0 = args[0]
		}
		if len(args) > 1 {
			a1 = args[1]
		}
	}
	var dspan obs.DrainSpan
	if obsRec != nil {
		dspan = obsRec.BeginDrainSpan(fv, t.TID(), name, uint64(rec.cat))
	}

	// Drain-time divergence checks: decode what crossed the ring, then
	// the same name/scalar comparison as the strict rendezvous.
	cmpMark := s.lr.Mark()
	lname, largs, derr := decodeCallRecord(rec.wire)
	if derr != nil {
		s.drainDiverged(t, sl, Alarm{
			Reason: AlarmCallMismatch, CallIndex: rec.idx, Function: s.fn,
			FollowerCall: name,
			Detail:       fmt.Sprintf("corrupt IPC call record: %v", derr),
		}, "ipc-corruption")
	}
	if lname != name {
		s.drainDiverged(t, sl, Alarm{
			Reason: AlarmCallMismatch, CallIndex: rec.idx, Function: s.fn,
			LeaderCall: lname, FollowerCall: name,
			Detail: fmt.Sprintf("leader called %s, follower called %s", lname, name),
		}, "call-mismatch")
	}
	if bad, li, fi := scalarMismatch(name, largs, args); bad {
		s.drainDiverged(t, sl, Alarm{
			Reason: AlarmArgMismatch, CallIndex: rec.idx, Function: s.fn,
			LeaderCall: lname, FollowerCall: name,
			Detail: fmt.Sprintf("%s arg mismatch: leader %#x vs follower %#x", name, li, fi),
		}, "arg-mismatch")
	}

	if obsRec != nil {
		obsRec.Record(obs.EvLockstep, fv, t.TID(), name, uint64(rec.cat), rec.idx, 0)
		m := obsRec.Metrics()
		m.Inc("lockstep.category." + rec.cat.Slug())
		m.Observe(obs.MetricRendezvousLag, s.calls.Load()-rec.idx)
		obsRec.ObserveSeries(obs.SeriesLag, s.calls.Load()-rec.idx)
	}
	if lr != nil {
		lr.Add(ledger.PhaseCompare, fv, cls,
			0, cmpMark, uint64(len(rec.wire)))
	}

	if rec.barrier {
		ret := s.followerBarrier(t, sl, name, args, rec, lag, arriveTS, a0, a1)
		dspan.End(ret)
		return ret
	}
	if rec.local {
		// User-space call: execute in the follower's own window.
		// lib.Call records the follower's enter/exit events itself.
		ret := s.mon.lib.Call(t, name, args)
		dspan.End(ret)
		return ret
	}

	// Pipelined record: decode and apply the leader's result snapshot.
	emuMark := s.lr.Mark()
	ret, errno, bufs, rerr := decodeResultRecord(rec.result)
	if rerr != nil {
		s.drainDiverged(t, sl, Alarm{
			Reason: AlarmCallMismatch, CallIndex: rec.idx, Function: s.fn,
			LeaderCall: lname, FollowerCall: name,
			Detail: fmt.Sprintf("corrupt IPC result record: %v", rerr),
		}, "ipc-corruption")
	}
	copied, faulted := s.applyResult(t, sl, name, rec.idx, largs, args, bufs)
	if lr != nil {
		lr.Add(ledger.PhaseEmulate, fv, cls,
			costs.LockstepCopyPerByte*cyclesOf(copied), emuMark, uint64(copied))
	}
	s.emulatedBytes.Add(uint64(copied))
	if obsRec != nil {
		obsRec.Record(obs.EvEmulated, fv, t.TID(), name, uint64(copied), 0, ret)
		obsRec.Metrics().Add("lockstep.emulated.bytes", uint64(copied))
		obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
		obsRec.RecordIn(t.Fn(), obs.EvLibcExit, fv, t.TID(), name, 0, 0, ret)
	}
	if faulted && s.mon.contain() {
		// The follower's result buffer is gone; it cannot keep up.
		dspan.End(ret)
		s.mon.detachFollower(s, sl, "emulation-fault")
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	}
	t.SetErrno(errno)
	dspan.End(ret)
	return ret
}

// dequeueRecord takes the next leader record off the slot's ring, blocking
// until the leader publishes one. The ring is checked before (and after)
// the leaderDone signal: all appends happen-before leaderDone closes, and
// select picks ready cases at random, so a tail record must not be
// mistaken for a sequence overrun.
func (s *session) dequeueRecord(t *machine.Thread, sl *followerSlot, name string) *leaderRecord {
	select {
	case rec := <-sl.ring:
		return rec
	default:
	}
	select {
	case rec := <-sl.ring:
		return rec
	case <-sl.detachCh:
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	case <-s.leaderDone:
		select {
		case rec := <-sl.ring:
			return rec
		default:
		}
		if sl.detached() {
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
		}
		// The leader already left the region: the follower is executing
		// calls the leader never made.
		var snaps []obs.ThreadSnapshot
		if s.mon.rec != nil {
			snaps = []obs.ThreadSnapshot{s.mon.snapshot("follower", t)}
		}
		s.mon.raiseAlarm(Alarm{
			Reason: AlarmSequenceLength, CallIndex: s.calls.Load(), Function: s.fn,
			FollowerCall: name, Variant: VariantID(sl.id),
			Detail: fmt.Sprintf("follower issued %s after leader finished the region", name),
		}, snaps...)
		s.diverged.Store(true)
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
	}
}

// followerBarrier hands the follower's own callRecord back through the
// barrier record's reply channel and completes a full rendezvous:
// everything before this call has drained, so the leader's verdict
// arrives exactly as in strict lockstep.
func (s *session) followerBarrier(t *machine.Thread, sl *followerSlot, name string, args []uint64, rec *leaderRecord, lag clock.Cycles, arriveTS clock.Cycles, a0, a1 uint64) uint64 {
	fv := obs.FollowerVariant(sl.id)
	mshMark := s.lr.Mark()
	frec := &callRecord{
		name: name, args: args, wire: encodeCallRecord(name, args),
		thread: t, resp: make(chan callResult, 1),
		lag: lag,
	}
	lr := s.lr
	var cls ledger.Class
	var fwaitStart clock.Cycles
	if lr != nil {
		cls = ledger.ClassOf(name)
		lr.Add(ledger.PhaseMarshal, fv, cls, 0, mshMark, uint64(len(frec.wire)))
		fwaitStart = s.mon.m.Counter().Cycles()
	}
	rec.reply <- frec // cap 1: never blocks
	obsRec := s.mon.rec
	var res callResult
	select {
	case res = <-frec.resp:
	case <-sl.detachCh:
		// A buffered verdict beats the detach signal (select picks ready
		// cases at random; the reply may already be in flight).
		select {
		case res = <-frec.resp:
		default:
			panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
		}
	}
	if lr != nil {
		lr.Add(ledger.PhaseWait, fv, cls,
			s.mon.m.Counter().Cycles()-fwaitStart, ledger.Mark{}, 0)
	}
	switch res.mode {
	case modeLocal:
		return s.mon.lib.Call(t, name, args)
	case modeEmulated:
		if obsRec != nil {
			obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
			obsRec.RecordIn(t.Fn(), obs.EvLibcExit, fv, t.TID(), name, 0, 0, res.ret)
		}
		t.SetErrno(res.errno)
		return res.ret
	case modeDetach:
		if obsRec != nil {
			obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
		}
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	default:
		if obsRec != nil {
			obsRec.RecordInAt(arriveTS, t.Fn(), obs.EvLibcEnter, fv, t.TID(), name, a0, a1, 0)
		}
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
	}
}

// drainDiverged raises a drain-time divergence alarm from a follower
// slot's goroutine and severs that slot per the policy. When other slots
// remain live, the slot disagreeing with the leader's record is implicitly
// outvoted (the leader plus the agreeing slots form the majority), so the
// alarm is re-marked AlarmOutvoted. Only the follower's own thread may be
// snapshotted here — the leader is running ahead concurrently. Never
// returns.
func (s *session) drainDiverged(t *machine.Thread, sl *followerSlot, a Alarm, cause string) {
	a.Variant = VariantID(sl.id)
	if s.liveAttached() > 1 {
		a.Reason = AlarmOutvoted
	}
	var snaps []obs.ThreadSnapshot
	if s.mon.rec != nil {
		snaps = []obs.ThreadSnapshot{s.mon.snapshot("follower", t)}
	}
	s.mon.raiseAlarm(a, snaps...)
	s.diverged.Store(true)
	if a.Reason == AlarmOutvoted {
		if obsRec := s.mon.rec; obsRec != nil {
			obsRec.Metrics().Inc("vote.follower_outvoted")
		}
	}
	s.mon.severFromFollower(s, sl, t, cause)
}

// followerTimedOut raises the drain-time deadline alarm with the stalled
// call's own ordinal and severs the slot per the policy. Never returns.
func (s *session) followerTimedOut(t *machine.Thread, sl *followerSlot, name string, ordinal uint64, lag clock.Cycles) {
	deadline := s.mon.opts.RendezvousDeadline
	var snaps []obs.ThreadSnapshot
	if s.mon.rec != nil {
		snaps = []obs.ThreadSnapshot{s.mon.snapshot("follower", t)}
	}
	s.mon.raiseAlarm(Alarm{
		Reason: AlarmRendezvousTimeout, CallIndex: ordinal, Function: s.fn,
		FollowerCall: name, Variant: VariantID(sl.id),
		Detail: fmt.Sprintf("follower stalled %d cycles against a %d-cycle rendezvous deadline",
			lag, deadline),
	}, snaps...)
	s.diverged.Store(true)
	s.mon.rec.Metrics().Inc("rendezvous.timeout")
	s.mon.severFromFollower(s, sl, t, "rendezvous-timeout")
}

// captureOutputs snapshots the buffers the leader's call wrote through
// its pointer arguments — the per-call rules of emulate (lockstep.go),
// applied at call time so the record is immune to the leader overwriting
// the buffer while it runs ahead. delta is the target slot's window
// shift: epoll_data entries that point into the leader's space are
// rebased into that slot's window here, while the leader's heap
// watermark still reflects the moment of the call.
func (s *session) captureOutputs(name string, args []uint64, ret uint64, delta int64) []emuBuf {
	as := s.mon.m.AddressSpace()
	grab := func(argIdx, n int) []emuBuf {
		if n <= 0 {
			return nil
		}
		src := mem.Addr(argAt(args, argIdx))
		if src == 0 {
			return nil
		}
		buf := make([]byte, n)
		if err := as.ReadAt(src, buf); err != nil {
			return nil
		}
		return []emuBuf{{argIdx: argIdx, data: buf}}
	}
	retN := 0
	if int64(ret) > 0 {
		retN = int(int64(ret))
	}
	switch name {
	case "read", "recv":
		return grab(1, retN)
	case "stat", "fstat":
		return grab(1, 24)
	case "gettimeofday":
		return grab(0, 16)
	case "time":
		return grab(0, 8)
	case "localtime_r":
		return grab(1, 64)
	case "getsockopt":
		return grab(2, 8)
	case "accept4":
		return nil // peer-address buffer unused by the simulated apps
	case "epoll_wait", "epoll_pwait":
		src := mem.Addr(argAt(args, 1))
		data := make([]byte, 0, retN*16)
		for i := 0; i < retN; i++ {
			var entry [16]byte
			if err := as.ReadAt(src+mem.Addr(i*16), entry[:]); err != nil {
				break
			}
			d := fromLE(entry[8:])
			if s.inLeaderSpace(mem.Addr(d)) {
				toLE(entry[8:], uint64(int64(d)+delta))
			}
			data = append(data, entry[:]...)
		}
		if len(data) == 0 {
			return nil
		}
		return []emuBuf{{argIdx: 1, data: data}}
	}
	return nil
}

// applyResult writes the decoded buffer snapshots into the follower's own
// argument buffers, with the same fault attribution as the strict
// emulate. The per-byte copy cost is charged to the follower thread —
// off the leader's critical path, unlike strict mode where the copy
// happens inside the rendezvous.
func (s *session) applyResult(t *machine.Thread, sl *followerSlot, name string, idx uint64, largs, fargs []uint64, bufs []emuBuf) (int, bool) {
	as := s.mon.m.AddressSpace()
	costs := s.mon.m.Costs()
	copied := 0
	faulted := false
	for _, b := range bufs {
		dst := mem.Addr(argAt(fargs, b.argIdx))
		src := mem.Addr(argAt(largs, b.argIdx))
		if dst == 0 || len(b.data) == 0 {
			continue
		}
		if err := as.WriteAt(dst, b.data); err != nil {
			s.mon.raiseAlarm(Alarm{
				Reason: AlarmEmulationFault, CallIndex: idx, Function: s.fn,
				LeaderCall: name, Variant: VariantID(sl.id),
				Detail: fmt.Sprintf("emulation copy of %d bytes into follower buffer %#x failed: %v",
					len(b.data), dst, err),
			})
			s.diverged.Store(true)
			faulted = true
			continue
		}
		_ = as.CopyTaint(dst, src, len(b.data))
		s.mon.m.ChargeThread(t, costs.LockstepCopyPerByte*cyclesOf(len(b.data)))
		if s.mon.opts.Policy == PolicyRollback {
			// Same redo capture as the strict emulate: the decoded result
			// snapshot is owned by this record and never reused.
			s.mon.redo.Append(idx, name, dst, b.data)
		}
		copied += len(b.data)
	}
	return copied, faulted
}

func argAt(a []uint64, i int) uint64 {
	if i >= 0 && i < len(a) {
		return a[i]
	}
	return 0
}
