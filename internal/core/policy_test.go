package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"smvx/internal/boot"
	"smvx/internal/obs"
	"smvx/internal/sim/machine"
)

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range []DivergencePolicy{PolicyKillBoth, PolicyLeaderContinue, PolicyRestartFollower, PolicyRollback} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyKillBoth {
		t.Errorf("empty policy = %v, %v; want kill-both", p, err)
	}
	if _, err := ParsePolicy("shrug"); err == nil {
		t.Error("unknown policy must not parse")
	}
	if DivergencePolicy(42).String() != "policy(42)" {
		t.Errorf("out-of-range String = %q", DivergencePolicy(42))
	}
}

// policyApp is testApp with a recorder attached, so policy tests can assert
// on detach/restart events.
func policyApp(t *testing.T, opts ...Option) (*boot.Env, *Monitor, *obs.Recorder) {
	t.Helper()
	env, _ := testApp(t)
	rec := env.Obs
	if rec == nil {
		rec = obs.NewRecorder(obs.Config{})
	}
	base := []Option{WithSeed(11), WithRecorder(rec)}
	mon := New(env.Machine, env.LibC, append(base, opts...)...)
	return env, mon, rec
}

// defineCrashOnce registers a protected function whose follower crashes (via
// a bias-conditional load of an unmapped address) only in its first
// incarnation — a re-cloned follower runs clean, so restart policies can
// prove recovery. The incarnation counter lives in the test harness, outside
// the simulated machine, so it is exempt from lockstep.
func defineCrashOnce(t *testing.T, env *boot.Env) {
	t.Helper()
	var followerRuns atomic.Int64
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		if th.Bias() != 0 && followerRuns.Add(1) == 1 {
			th.Load64(0xdead_0000_0000) // unmapped: follower faults
		}
		th.Libc("close", 0)
		return 0
	})
}

func runRegions(t *testing.T, env *boot.Env, mon *Monitor, fn string, n int) (completed int, runErr error) {
	t.Helper()
	th, err := env.MainThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	runErr = th.Run(func(tt *machine.Thread) {
		for i := 0; i < n; i++ {
			if err := mon.Start(tt, fn); err != nil {
				t.Errorf("Start %d: %v", i, err)
				return
			}
			tt.Call(fn)
			if err := mon.End(tt); err != nil && !errors.Is(err, machine.ErrRegionRolledBack) {
				t.Errorf("End %d: %v", i, err)
				return
			}
			completed++
		}
	})
	return completed, runErr
}

func eventCount(rec *obs.Recorder, kind obs.EventKind) int {
	n := 0
	for _, ev := range rec.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func TestLeaderContinueContainsFollowerCrash(t *testing.T) {
	env, mon, rec := policyApp(t, WithPolicy(PolicyLeaderContinue))
	defineCrashOnce(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 3)
	if runErr != nil {
		t.Fatalf("leader crashed: %v", runErr)
	}
	if completed != 3 {
		t.Fatalf("completed %d/3 regions", completed)
	}
	alarms := mon.Alarms()
	if len(alarms) == 0 || alarms[0].Reason != AlarmFollowerFault {
		t.Fatalf("alarms = %v, want AlarmFollowerFault", alarms)
	}
	for _, a := range alarms {
		if !a.Handled {
			t.Errorf("alarm not handled under leader-continue: %+v", a)
		}
	}
	if mon.UnhandledAlarmCount() != 0 {
		t.Errorf("UnhandledAlarmCount = %d", mon.UnhandledAlarmCount())
	}
	if !mon.Degraded() {
		t.Error("monitor should be degraded after detach")
	}
	if mon.RestartsUsed() != 0 {
		t.Errorf("leader-continue restarted the follower %d times", mon.RestartsUsed())
	}
	if n := eventCount(rec, obs.EvFollowerDetached); n != 1 {
		t.Errorf("EvFollowerDetached count = %d, want 1", n)
	}
	reports := mon.Reports()
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if !reports[0].Diverged || !reports[0].Degraded {
		t.Errorf("region 0 = %+v, want diverged+degraded", reports[0])
	}
	// Later regions run leader-only: degraded, not diverged, no creation.
	for i := 1; i < 3; i++ {
		if !reports[i].Degraded || reports[i].Diverged {
			t.Errorf("region %d = %+v, want degraded leader-only", i, reports[i])
		}
	}
}

func TestRestartFollowerReclonesIntoLockstep(t *testing.T) {
	env, mon, rec := policyApp(t, WithPolicy(PolicyRestartFollower),
		WithRestartBudget(2), WithRestartBackoff(100))
	defineCrashOnce(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 3)
	if runErr != nil || completed != 3 {
		t.Fatalf("completed %d/3, err=%v", completed, runErr)
	}
	if mon.RestartsUsed() != 1 {
		t.Fatalf("RestartsUsed = %d, want 1", mon.RestartsUsed())
	}
	if mon.Degraded() {
		t.Error("monitor still degraded after successful restart")
	}
	if mon.UnhandledAlarmCount() != 0 {
		t.Errorf("UnhandledAlarmCount = %d", mon.UnhandledAlarmCount())
	}
	if n := eventCount(rec, obs.EvFollowerRestarted); n != 1 {
		t.Errorf("EvFollowerRestarted count = %d, want 1", n)
	}
	reports := mon.Reports()
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if !reports[1].FollowerRestarted {
		t.Errorf("region 1 = %+v, want FollowerRestarted", reports[1])
	}
	// The restarted follower is back in lockstep: region 1 and 2 replicate
	// the full call count with no divergence.
	for i := 1; i < 3; i++ {
		if reports[i].Diverged || reports[i].Degraded {
			t.Errorf("region %d = %+v, want clean lockstep", i, reports[i])
		}
		if reports[i].LibcCalls != 2 {
			t.Errorf("region %d LibcCalls = %d, want 2", i, reports[i].LibcCalls)
		}
	}
}

// defineCrashAlways makes the follower crash in every incarnation, to
// exhaust the restart budget.
func defineCrashAlways(t *testing.T, env *boot.Env) {
	t.Helper()
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		if th.Bias() != 0 {
			th.Load64(0xdead_0000_0000)
		}
		th.Libc("close", 0)
		return 0
	})
}

func TestRestartBudgetExhaustionDegradesForGood(t *testing.T) {
	env, mon, _ := policyApp(t, WithPolicy(PolicyRestartFollower),
		WithRestartBudget(2), WithRestartBackoff(100))
	defineCrashAlways(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 5)
	if runErr != nil || completed != 5 {
		t.Fatalf("completed %d/5, err=%v", completed, runErr)
	}
	if mon.RestartsUsed() != 2 {
		t.Fatalf("RestartsUsed = %d, want budget of 2", mon.RestartsUsed())
	}
	if !mon.Degraded() {
		t.Error("monitor must stay degraded once the budget is spent")
	}
	if mon.UnhandledAlarmCount() != 0 {
		t.Errorf("UnhandledAlarmCount = %d", mon.UnhandledAlarmCount())
	}
	reports := mon.Reports()
	// Regions 0-2 had followers (initial + 2 restarts), all crashed; 3-4 ran
	// leader-only.
	for i := 3; i < 5; i++ {
		if !reports[i].Degraded || reports[i].Diverged {
			t.Errorf("region %d = %+v, want leader-only", i, reports[i])
		}
	}
}

// TestStallTripsRendezvousDeadline drives a follower that burns cycles past
// the deadline before its rendezvous; the leader must raise
// AlarmRendezvousTimeout deterministically (lag check) rather than deadlock.
func TestStallTripsRendezvousDeadline(t *testing.T) {
	env, mon, _ := policyApp(t, WithPolicy(PolicyLeaderContinue),
		WithRendezvousDeadline(100_000))
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		if th.Bias() != 0 {
			for i := 0; i < 50; i++ {
				th.ChargeUser(10_000) // 500k cycles >> 100k deadline
			}
		}
		th.Libc("close", 0)
		return 0
	})
	completed, runErr := runRegions(t, env, mon, "protected_func", 2)
	if runErr != nil || completed != 2 {
		t.Fatalf("completed %d/2, err=%v", completed, runErr)
	}
	var timeout *Alarm
	for i, a := range mon.Alarms() {
		if a.Reason == AlarmRendezvousTimeout {
			timeout = &mon.Alarms()[i]
		}
	}
	if timeout == nil {
		t.Fatalf("no AlarmRendezvousTimeout; alarms = %v", mon.Alarms())
	}
	if !timeout.Handled {
		t.Error("timeout alarm not handled under leader-continue")
	}
	if !mon.Degraded() {
		t.Error("follower should be detached after the blown deadline")
	}
}

// TestHungFollowerTrippedByWatchdog wedges the follower off-CPU (blocking on
// a channel, charging nothing) — only the real-time watchdog's frozen-clock
// breaker can catch this; the leader must not deadlock.
func TestHungFollowerTrippedByWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	env, mon, _ := policyApp(t, WithPolicy(PolicyLeaderContinue),
		WithRendezvousDeadline(DefaultRendezvousDeadline))
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		if th.Bias() != 0 {
			<-release // hangs until test teardown: no cycles charged
		}
		th.Libc("close", 0)
		return 0
	})
	completed, runErr := runRegions(t, env, mon, "protected_func", 1)
	if runErr != nil || completed != 1 {
		t.Fatalf("completed %d/1, err=%v", completed, runErr)
	}
	found := false
	for _, a := range mon.Alarms() {
		if a.Reason == AlarmRendezvousTimeout && a.Handled {
			found = true
		}
	}
	if !found {
		t.Fatalf("no handled AlarmRendezvousTimeout; alarms = %v", mon.Alarms())
	}
	if !mon.Degraded() {
		t.Error("hung follower should be detached")
	}
}

// TestEmulationFaultAlarm points the follower's gettimeofday buffer at an
// unmapped address: the emulation copy must raise AlarmEmulationFault with
// its own reason rather than folding into a generic divergence.
func TestEmulationFaultAlarm(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy DivergencePolicy
	}{
		{"kill-both", PolicyKillBoth},
		{"leader-continue", PolicyLeaderContinue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, mon, _ := policyApp(t, WithPolicy(tc.policy))
			env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
				g := uint64(th.Global("g_buf"))
				if th.Bias() != 0 {
					g = 0x6f6f_0000_0000 // unmapped in every variant
				}
				th.Libc("gettimeofday", g, 0)
				th.Libc("close", 0)
				return 0
			})
			completed, runErr := runRegions(t, env, mon, "protected_func", 1)
			if runErr != nil || completed != 1 {
				t.Fatalf("completed %d/1, err=%v", completed, runErr)
			}
			var found *Alarm
			for i, a := range mon.Alarms() {
				if a.Reason == AlarmEmulationFault {
					found = &mon.Alarms()[i]
				}
			}
			if found == nil {
				t.Fatalf("no AlarmEmulationFault; alarms = %v", mon.Alarms())
			}
			if found.Handled != (tc.policy != PolicyKillBoth) {
				t.Errorf("Handled = %v under %s", found.Handled, tc.policy)
			}
			if tc.policy == PolicyKillBoth && mon.UnhandledAlarmCount() == 0 {
				t.Error("kill-both must leave the alarm unhandled")
			}
		})
	}
}

// TestKillBothPreservesPaperBehaviour: under the default policy a divergence
// still aborts the follower with ErrDivergence and nothing is detached,
// restarted, or marked degraded.
func TestKillBothPreservesPaperBehaviour(t *testing.T) {
	env, mon, rec := policyApp(t)
	defineCrashAlways(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 2)
	if runErr != nil || completed != 2 {
		t.Fatalf("completed %d/2, err=%v", completed, runErr)
	}
	if mon.Degraded() || mon.RestartsUsed() != 0 {
		t.Errorf("kill-both mutated policy state: degraded=%v restarts=%d",
			mon.Degraded(), mon.RestartsUsed())
	}
	if n := eventCount(rec, obs.EvFollowerDetached); n != 0 {
		t.Errorf("kill-both emitted %d detach events", n)
	}
	for _, a := range mon.Alarms() {
		if a.Handled {
			t.Errorf("kill-both marked alarm handled: %+v", a)
		}
	}
	if mon.UnhandledAlarmCount() != len(mon.Alarms()) {
		t.Errorf("unhandled = %d, alarms = %d", mon.UnhandledAlarmCount(), len(mon.Alarms()))
	}
	// Kill-both keeps re-cloning per region: region 1 diverges again.
	reports := mon.Reports()
	if len(reports) != 2 || !reports[1].Diverged {
		t.Errorf("reports = %+v", reports)
	}
	if errors.Is(runErr, ErrDetached) {
		t.Error("kill-both must never detach")
	}
}
