package core

import (
	"fmt"

	"smvx/internal/obs"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/machine"
)

// DivergencePolicy decides what raiseAlarm and follower faults do to the
// running variants. The paper's monitor has exactly one answer — alarm and
// stop — but production MVX systems survive variant faults: dMVX detaches a
// failed variant and degrades to single-variant execution, and ReMon-family
// MVEEs harden rendezvous with timeouts and bounded retries. The policy
// layer reproduces that spectrum without touching the detection logic.
type DivergencePolicy int

const (
	// PolicyKillBoth is the paper's default: the alarm stands, the
	// diverging follower is aborted with ErrDivergence, and nothing is
	// contained. Existing behaviour, byte for byte.
	PolicyKillBoth DivergencePolicy = iota
	// PolicyLeaderContinue quarantines and detaches the follower, drains
	// its pending rendezvous slots, and lets the leader run single-variant
	// with the monitor flagged degraded (dMVX-style detach).
	PolicyLeaderContinue
	// PolicyRestartFollower detaches like PolicyLeaderContinue, then
	// re-clones a fresh follower at the next protected-region entry,
	// subject to a bounded restart budget and a virtual-cycle backoff;
	// once the budget is spent it degrades to leader-continue.
	PolicyRestartFollower
	// PolicyRollback survives a divergence by rewinding: the variants'
	// memory is restored to the last copy-on-write checkpoint (captured at
	// a quiescent rendezvous every SnapshotInterval virtual cycles), the
	// post-snapshot libc tail is replayed from the redo log through the
	// emulation path, and the next protected region re-arms full lockstep
	// with a freshly cloned follower — no degraded single-variant window.
	// Repeated rollbacks at the same root-cause ordinal (no forward
	// progress) exhaust RollbackBudget and escalate to kill-both.
	PolicyRollback
)

// PolicyRestartVariant is the variant-set name for PolicyRestartFollower:
// with more than one follower slot the policy restarts whichever variant
// was quarantined, not "the" follower. The old name remains the canonical
// spelling (String still prints "restart-follower"); this alias exists so
// new code can use variant-set vocabulary.
const PolicyRestartVariant DivergencePolicy = PolicyRestartFollower

// String names the policy (the same spelling ParsePolicy accepts).
func (p DivergencePolicy) String() string {
	switch p {
	case PolicyKillBoth:
		return "kill-both"
	case PolicyLeaderContinue:
		return "leader-continue"
	case PolicyRestartFollower:
		return "restart-follower"
	case PolicyRollback:
		return "rollback"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as spelled by String.
func ParsePolicy(s string) (DivergencePolicy, error) {
	switch s {
	case "kill-both", "":
		return PolicyKillBoth, nil
	case "leader-continue":
		return PolicyLeaderContinue, nil
	case "restart-follower", "restart-variant":
		return PolicyRestartFollower, nil
	case "rollback":
		return PolicyRollback, nil
	default:
		return 0, fmt.Errorf("smvx: unknown divergence policy %q (want kill-both, leader-continue, restart-follower, or rollback)", s)
	}
}

// Containment defaults.
const (
	// DefaultRestartBudget is how many follower re-clones
	// PolicyRestartFollower attempts before degrading for good.
	DefaultRestartBudget = 3
	// DefaultRestartBackoff is the virtual-cycle delay between a detach
	// and the next restart attempt (~0.5ms at the simulated 2.1GHz).
	DefaultRestartBackoff clock.Cycles = 1_000_000
	// DefaultRendezvousDeadline is the per-rendezvous virtual-cycle budget
	// (~1s at 2.1GHz): no legitimate lockstep wait in the reproduced
	// workloads comes within orders of magnitude of it.
	DefaultRendezvousDeadline clock.Cycles = 2_100_000_000
	// DefaultSnapshotInterval is PolicyRollback's checkpoint cadence
	// (~50µs at the simulated 2.1GHz): a checkpoint is captured at the
	// first quiescent rendezvous after this many virtual cycles elapse.
	DefaultSnapshotInterval clock.Cycles = 100_000
	// DefaultRollbackBudget is how many consecutive rollbacks at the same
	// root-cause ordinal PolicyRollback absorbs before concluding the
	// region makes no forward progress and escalating to kill-both.
	DefaultRollbackBudget = 3
)

// contain reports whether a containment policy is active (anything but the
// paper's kill-both). A rollback monitor that has exhausted its budget has
// escalated to kill-both and stops containing.
func (mo *Monitor) contain() bool {
	if mo.opts.Policy == PolicyRollback && mo.escalated.Load() {
		return false
	}
	return mo.opts.Policy != PolicyKillBoth
}

// Degraded reports whether the monitor is running without a follower after
// a policy detach (cleared when PolicyRestartFollower re-clones one).
func (mo *Monitor) Degraded() bool {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.degraded
}

// RestartsUsed returns how many follower restarts have been spent.
func (mo *Monitor) RestartsUsed() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.restartsUsed
}

// UnhandledAlarmCount counts alarms no containment policy absorbed — the
// signal cmd/smvx turns into a nonzero exit status.
func (mo *Monitor) UnhandledAlarmCount() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	n := 0
	for _, a := range mo.alarms {
		if !a.Handled {
			n++
		}
	}
	return n
}

// severFromFollower ends one follower slot's participation after it
// detected a divergence (or a blown deadline) at drain time, on its own
// goroutine: containment policies detach and wind the thread down with
// ErrDetached (no secondary alarm), while kill-both panics with
// ErrDivergence so the variant waiter raises the paper's follower-fault
// alarm — the same split the strict rendezvous reaches through
// rejectFollower. Never returns.
func (mo *Monitor) severFromFollower(s *session, sl *followerSlot, t *machine.Thread, cause string) {
	if mo.contain() {
		mo.detachFollower(s, sl, cause)
		panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDetached})
	}
	panic(&machine.Crash{Thread: t.Name(), IP: t.IP(), Err: ErrDivergence})
}

// detachFollower severs one follower slot from lockstep, exactly once per
// slot: the slot's detach channel is closed (waking a follower blocked
// mid-rendezvous), its TID is quarantined so any later trampoline entry
// faults with ErrDetached instead of reaching the kernel unreplicated, and
// pending rendezvous slots are drained with a detach verdict. Under a
// containment policy it additionally marks the slot down (the monitor is
// degraded only when every slot is down), arms the restart backoff, and
// surfaces the transition to the flight recorder. cause is a short slug
// for the EvFollowerDetached event.
func (mo *Monitor) detachFollower(s *session, sl *followerSlot, cause string) {
	sl.detachOnce.Do(func() {
		// Bookkeeping happens before the channel close so that a follower
		// woken by it observes the quarantine entry.
		mo.mu.Lock()
		if sl.tid != 0 {
			mo.quarantined[sl.tid] = true
		}
		wasDown := mo.slotDown[sl.id-1]
		if mo.contain() {
			if mo.opts.Policy == PolicyRollback {
				// Rollback recovers at region exit and the next region
				// re-arms full lockstep with fresh clones unconditionally:
				// the monitor never enters the degraded single-variant mode,
				// so no backoff is armed either.
			} else {
				mo.slotDown[sl.id-1] = true
				allDown := true
				for _, d := range mo.slotDown {
					allDown = allDown && d
				}
				mo.degraded = allDown
				mo.nextRestartAt = mo.m.Counter().Cycles() + mo.opts.RestartBackoff
			}
		}
		mo.mu.Unlock()
		close(sl.detachCh)
		sl.drainPending()
		if mo.contain() && !wasDown {
			mo.rec.Record(obs.EvFollowerDetached, obs.FollowerVariant(sl.id), sl.tid,
				cause, s.calls.Load(), 0, 0)
			mo.rec.Metrics().Inc("policy.follower_detached")
		}
	})
}
