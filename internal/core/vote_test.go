package core

import (
	"fmt"
	"reflect"
	"testing"
)

// voteBallot builds a valid ballot for a "write(fd, buf, len)" call with
// the given scalar fd — write's scalar mask makes fd the voted argument,
// while the buf pointer legitimately differs per variant window.
func voteBallot(variant int, fd uint64) Ballot {
	return Ballot{
		Variant: VariantID(variant),
		Name:    "write",
		Args:    []uint64{fd, 0x400500 + uint64(variant)*0x1000, 17},
		Valid:   true,
	}
}

// TestVoteAllAgreementPatternsN3 enumerates every corruption pattern of a
// 3-variant set (each of leader, follower 1, follower 2 either casts the
// honest value or a shared corrupted one — all 2^3 subsets) and pins the
// winner, losers, and majority. The corrupted ballots agree with each
// other, which is the adversarial worst case: a colluding pair outvotes
// the lone honest leader at N=3.
func TestVoteAllAgreementPatternsN3(t *testing.T) {
	const honest, corrupt = 7, 7 ^ 1
	cases := []struct {
		corrupted    [3]bool
		wantWinner   int
		wantLosers   []int
		wantMajority int
	}{
		{[3]bool{false, false, false}, 0, nil, 3},
		{[3]bool{false, false, true}, 0, []int{2}, 2},
		{[3]bool{false, true, false}, 0, []int{1}, 2},
		// A colluding follower pair forms the larger class: the leader is
		// outvoted.
		{[3]bool{false, true, true}, 1, []int{0}, 2},
		// A corrupted leader is outvoted by the honest followers.
		{[3]bool{true, false, false}, 1, []int{0}, 2},
		// Leader plus one corrupted follower still outvote the honest
		// straggler — garbage in, garbage wins; the vote only measures
		// agreement.
		{[3]bool{true, false, true}, 0, []int{1}, 2},
		{[3]bool{true, true, false}, 0, []int{2}, 2},
		// Everyone corrupted the same way: unanimous, no losers.
		{[3]bool{true, true, true}, 0, nil, 3},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%v", c.corrupted)
		t.Run(name, func(t *testing.T) {
			ballots := make([]Ballot, 3)
			for i, bad := range c.corrupted {
				v := uint64(honest)
				if bad {
					v = corrupt
				}
				ballots[i] = voteBallot(i, v)
			}
			res := Vote(ballots)
			if res.Winner != c.wantWinner {
				t.Errorf("winner = %d, want %d", res.Winner, c.wantWinner)
			}
			if !reflect.DeepEqual(res.Losers, c.wantLosers) {
				t.Errorf("losers = %v, want %v", res.Losers, c.wantLosers)
			}
			if res.Majority != c.wantMajority {
				t.Errorf("majority = %d, want %d", res.Majority, c.wantMajority)
			}
		})
	}
}

// TestVoteNameMismatch pins that a differing call name splits the class
// even when the arguments happen to line up.
func TestVoteNameMismatch(t *testing.T) {
	ballots := []Ballot{
		voteBallot(0, 3),
		voteBallot(1, 3),
		{Variant: 2, Name: "read", Args: []uint64{3, 0x400500, 17}, Valid: true},
	}
	res := Vote(ballots)
	if res.Winner != 0 || res.Majority != 2 || !reflect.DeepEqual(res.Losers, []int{2}) {
		t.Errorf("vote = %+v, want leader wins 2-1 over the read ballot", res)
	}
}

// TestVoteInvalidBallots pins that undecodable records never join a class
// and always lose, and that a rendezvous with no valid ballot at all
// elects nobody.
func TestVoteInvalidBallots(t *testing.T) {
	ballots := []Ballot{
		voteBallot(0, 3),
		{Variant: 1, Valid: false},
		voteBallot(2, 3),
	}
	res := Vote(ballots)
	if res.Winner != 0 || res.Majority != 2 || !reflect.DeepEqual(res.Losers, []int{1}) {
		t.Errorf("vote = %+v, want invalid ballot among losers", res)
	}

	none := Vote([]Ballot{{Valid: false}, {Valid: false}})
	if none.Winner != -1 || !reflect.DeepEqual(none.Losers, []int{0, 1}) || none.Majority != 0 {
		t.Errorf("all-invalid vote = %+v, want winner -1 and everyone losing", none)
	}
}

// TestVoteTieBreaksTowardLeader pins the first-maximal tie-break: at an
// even split the class containing the lowest ballot index — the leader's —
// wins, so a split vote can never outvote the leader.
func TestVoteTieBreaksTowardLeader(t *testing.T) {
	ballots := []Ballot{
		voteBallot(0, 3),
		voteBallot(1, 9),
		voteBallot(2, 3),
		voteBallot(3, 9),
	}
	res := Vote(ballots)
	if res.Winner != 0 || res.Majority != 2 || !reflect.DeepEqual(res.Losers, []int{1, 3}) {
		t.Errorf("2-2 vote = %+v, want the leader's class to win the tie", res)
	}
}

// TestVotePairDegenerates pins the N=2 shape: a pair vote is exactly the
// pairwise compare — agreement elects both, disagreement elects the
// leader's singleton class.
func TestVotePairDegenerates(t *testing.T) {
	agree := Vote([]Ballot{voteBallot(0, 3), voteBallot(1, 3)})
	if agree.Winner != 0 || agree.Majority != 2 || len(agree.Losers) != 0 {
		t.Errorf("agreeing pair = %+v", agree)
	}
	differ := Vote([]Ballot{voteBallot(0, 3), voteBallot(1, 4)})
	if differ.Winner != 0 || differ.Majority != 1 || !reflect.DeepEqual(differ.Losers, []int{1}) {
		t.Errorf("differing pair = %+v, want leader's singleton to win", differ)
	}
}
