package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"smvx/internal/boot"
	"smvx/internal/obs"
	"smvx/internal/sim/machine"
)

// TestRollbackRecoversAndReArmsLockstep: a one-shot follower crash under
// PolicyRollback must rewind to the region's checkpoint and re-arm full
// two-variant lockstep — no degraded leader-only window ever opens.
func TestRollbackRecoversAndReArmsLockstep(t *testing.T) {
	for _, mode := range []LockstepMode{LockstepStrict, LockstepPipelined} {
		t.Run(mode.String(), func(t *testing.T) {
			env, mon, rec := policyApp(t, WithPolicy(PolicyRollback),
				WithLockstepMode(mode))
			defineCrashOnce(t, env)
			completed, runErr := runRegions(t, env, mon, "protected_func", 3)
			if runErr != nil || completed != 3 {
				t.Fatalf("completed %d/3, err=%v", completed, runErr)
			}
			if mon.Rollbacks() != 1 {
				t.Fatalf("Rollbacks = %d, want 1", mon.Rollbacks())
			}
			if mon.Escalated() {
				t.Error("single crash must not exhaust the rollback budget")
			}
			if mon.Degraded() {
				t.Error("rollback must never leave the monitor degraded")
			}
			if mon.UnhandledAlarmCount() != 0 {
				t.Errorf("UnhandledAlarmCount = %d", mon.UnhandledAlarmCount())
			}
			for _, a := range mon.Alarms() {
				if !a.Handled {
					t.Errorf("alarm not handled under rollback: %+v", a)
				}
			}
			if n := eventCount(rec, obs.EvRollback); n != 1 {
				t.Errorf("EvRollback count = %d, want 1", n)
			}
			// Every region captures its entry checkpoint at the first
			// quiescent rendezvous.
			if n := eventCount(rec, obs.EvSnapshot); n < 3 {
				t.Errorf("EvSnapshot count = %d, want >= 3", n)
			}
			reports := mon.Reports()
			if len(reports) != 3 {
				t.Fatalf("reports = %d", len(reports))
			}
			if !reports[0].Diverged || !reports[0].RolledBack {
				t.Errorf("region 0 = %+v, want diverged+rolled-back", reports[0])
			}
			// Later regions re-enter full lockstep: a fresh follower clone
			// replicates every call, and no region runs leader-only.
			for i := 1; i < 3; i++ {
				if reports[i].Diverged || reports[i].Degraded || reports[i].RolledBack {
					t.Errorf("region %d = %+v, want clean lockstep", i, reports[i])
				}
				if reports[i].LibcCalls != 2 {
					t.Errorf("region %d LibcCalls = %d, want 2", i, reports[i].LibcCalls)
				}
			}
			for i, r := range reports {
				if r.Degraded && i > 0 {
					t.Errorf("region %d opened a degraded single-variant window", i)
				}
			}
		})
	}
}

// TestRollbackRestoresMemoryToCheckpoint proves the restore is a real memory
// rewind: a leader store issued after the checkpoint anchor must be gone
// once the diverged region rolls back.
func TestRollbackRestoresMemoryToCheckpoint(t *testing.T) {
	env, mon, _ := policyApp(t, WithPolicy(PolicyRollback))
	var followerRuns atomic.Int64
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		th.Store64(g+128, 0xCAFE_F00D) // damage after the entry checkpoint
		if th.Bias() != 0 && followerRuns.Add(1) == 1 {
			th.Load64(0xdead_0000_0000) // unmapped: follower faults
		}
		th.Libc("close", 0)
		return 0
	})
	th, err := env.MainThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	var after uint64
	runErr := th.Run(func(tt *machine.Thread) {
		if err := mon.Start(tt, "protected_func"); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		tt.Call("protected_func")
		if err := mon.End(tt); !errors.Is(err, machine.ErrRegionRolledBack) {
			t.Errorf("End after a rolled-back region = %v, want ErrRegionRolledBack", err)
			return
		}
		after = tt.Load64(tt.Global("g_buf") + 128)
	})
	if runErr != nil {
		t.Fatalf("leader crashed: %v", runErr)
	}
	if mon.Rollbacks() != 1 {
		t.Fatalf("Rollbacks = %d, want 1", mon.Rollbacks())
	}
	if after == 0xCAFE_F00D {
		t.Fatalf("post-checkpoint store survived the rollback: g_buf+128 = %#x", after)
	}
	if after != 0 {
		t.Errorf("g_buf+128 = %#x after restore, want the checkpoint value 0", after)
	}
}

// TestInvokeAbortsHijackedRegionUnderRollback models the exploited-leader
// shape of the nginx CVE: the follower faults mid-region, after which the
// leader — now potentially executing attacker-controlled code — issues a
// store and heads for another rendezvous. Under PolicyRollback a region
// entered through Invoke must be unwound at that rendezvous: the post-fault
// store is rolled back, the region tail never executes, and the worker
// thread survives to run further clean regions in full lockstep.
func TestInvokeAbortsHijackedRegionUnderRollback(t *testing.T) {
	for _, mode := range []LockstepMode{LockstepStrict, LockstepPipelined} {
		t.Run(mode.String(), func(t *testing.T) {
			env, mon, rec := policyApp(t, WithPolicy(PolicyRollback),
				WithLockstepMode(mode))
			var followerRuns atomic.Int64
			tailRan := false
			env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
				g := th.Global("g_buf")
				th.Libc("gettimeofday", uint64(g), 0)
				if th.Bias() != 0 && followerRuns.Add(1) == 1 {
					th.Load64(0xdead_0000_0000) // follower faults: divergence
				}
				// From here the leader stands in for hijacked control flow:
				// a payload store, then a rendezvous the abort must preempt.
				th.Store64(g+128, 0xBAD_F00D)
				th.Libc("close", 0)
				th.Store64(g+136, 0x5AFE) // region tail: unreachable when aborted
				tailRan = th.Bias() == 0
				return 0
			})
			th, err := env.MainThread()
			if err != nil {
				t.Fatal(err)
			}
			if err := mon.Init(th); err != nil {
				t.Fatal(err)
			}
			var payload, tail uint64
			clean := 0
			runErr := th.Run(func(tt *machine.Thread) {
				if _, err := mon.Invoke(tt, "protected_func"); !errors.Is(err, machine.ErrRegionRolledBack) {
					t.Errorf("hijacked region Invoke = %v, want ErrRegionRolledBack", err)
					return
				}
				g := tt.Global("g_buf")
				payload, tail = tt.Load64(g+128), tt.Load64(g+136)
				// The surviving worker keeps serving: two more regions in
				// re-armed two-variant lockstep.
				for i := 0; i < 2; i++ {
					if _, err := mon.Invoke(tt, "protected_func"); err != nil {
						t.Errorf("Invoke %d: %v", i, err)
						return
					}
					clean++
				}
			})
			if runErr != nil {
				t.Fatalf("leader thread died — region was not survivable: %v", runErr)
			}
			if payload == 0xBAD_F00D {
				t.Errorf("post-fault payload store survived: g_buf+128 = %#x", payload)
			}
			if tail != 0 {
				t.Errorf("aborted region tail executed: g_buf+136 = %#x", tail)
			}
			if mon.Rollbacks() != 1 {
				t.Errorf("Rollbacks = %d, want 1", mon.Rollbacks())
			}
			if clean != 2 {
				t.Fatalf("clean follow-up regions = %d/2", clean)
			}
			if mon.Degraded() || mon.Escalated() {
				t.Errorf("degraded=%v escalated=%v after a single recovered region",
					mon.Degraded(), mon.Escalated())
			}
			if n := eventCount(rec, obs.EvRegionAbort); n != 1 {
				t.Errorf("EvRegionAbort count = %d, want 1", n)
			}
			if n := rec.Metrics().Counter("rollback.region_aborts"); n != 1 {
				t.Errorf("rollback.region_aborts = %d, want 1", n)
			}
			reports := mon.Reports()
			if len(reports) != 3 {
				t.Fatalf("reports = %d", len(reports))
			}
			if !reports[0].Diverged || !reports[0].RolledBack {
				t.Errorf("region 0 = %+v, want diverged+rolled-back", reports[0])
			}
			for i := 1; i < 3; i++ {
				if reports[i].Diverged || reports[i].Degraded || reports[i].RolledBack {
					t.Errorf("region %d = %+v, want clean lockstep", i, reports[i])
				}
			}
			_ = tailRan
		})
	}
}

// TestInvokeKillBothKeepsFatalSemantics: outside rollback, Invoke must not
// soften anything — the leader executes the whole region (including the
// tail) and the divergence stays an unhandled kill-both verdict.
func TestInvokeKillBothKeepsFatalSemantics(t *testing.T) {
	env, mon, rec := policyApp(t)
	defineCrashOnce(t, env)
	th, err := env.MainThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	runErr := th.Run(func(tt *machine.Thread) {
		if _, err := mon.Invoke(tt, "protected_func"); err != nil {
			t.Errorf("Invoke: %v", err)
		}
	})
	if runErr != nil {
		t.Fatalf("leader crashed: %v", runErr)
	}
	if n := eventCount(rec, obs.EvRegionAbort); n != 0 {
		t.Errorf("kill-both emitted %d region aborts", n)
	}
	if mon.UnhandledAlarmCount() == 0 {
		t.Error("kill-both must leave the follower-fault alarm unhandled")
	}
	reports := mon.Reports()
	if len(reports) != 1 || !reports[0].Diverged || reports[0].RolledBack {
		t.Errorf("reports = %+v", reports)
	}
}

// defineArgMismatchAlways diverges deterministically at call ordinal 2 in
// every region: the follower passes a different scalar backlog to listen, so
// the rollback root-cause ordinal is identical on every recurrence and the
// same-ordinal streak accumulates.
func defineArgMismatchAlways(t *testing.T, env *boot.Env) {
	t.Helper()
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		backlog := uint64(16)
		if th.Bias() != 0 {
			backlog = 128 // same call, different scalar argument
		}
		th.Libc("listen", 3, backlog)
		return 0
	})
}

// TestRollbackBudgetEscalatesToKillBoth: a divergence that recurs at the
// same root-cause ordinal makes no forward progress, so after the budget is
// spent the monitor must escalate — reinstating the paper's unhandled
// verdict for the streak and reverting to kill-both containment.
func TestRollbackBudgetEscalatesToKillBoth(t *testing.T) {
	env, mon, rec := policyApp(t, WithPolicy(PolicyRollback), WithRollbackBudget(2))
	defineArgMismatchAlways(t, env)
	completed, runErr := runRegions(t, env, mon, "protected_func", 5)
	if runErr != nil || completed != 5 {
		t.Fatalf("completed %d/5, err=%v", completed, runErr)
	}
	if !mon.Escalated() {
		t.Fatal("budget of 2 must escalate on the third same-ordinal rollback attempt")
	}
	if mon.Rollbacks() != 2 {
		t.Errorf("Rollbacks = %d, want the budget of 2", mon.Rollbacks())
	}
	if n := eventCount(rec, obs.EvRollback); n != 2 {
		t.Errorf("EvRollback count = %d, want 2", n)
	}
	if mon.Degraded() {
		t.Error("escalation reverts to kill-both, which never degrades")
	}
	// Every same-ordinal arg-mismatch alarm in the streak — including the
	// ones provisionally absorbed by the first two rollbacks — must end up
	// unhandled once the escalation breaks the recovery promise.
	mismatches, unhandled := 0, 0
	for _, a := range mon.Alarms() {
		if a.Reason != AlarmArgMismatch {
			continue
		}
		mismatches++
		if !a.Handled {
			unhandled++
		}
	}
	if mismatches != 5 || unhandled != 5 {
		t.Errorf("arg-mismatch alarms = %d (unhandled %d), want 5 unhandled of 5",
			mismatches, unhandled)
	}
	if mon.UnhandledAlarmCount() < 5 {
		t.Errorf("UnhandledAlarmCount = %d, want >= 5", mon.UnhandledAlarmCount())
	}
	reports := mon.Reports()
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i := 0; i < 2; i++ {
		if !reports[i].Diverged || !reports[i].RolledBack {
			t.Errorf("region %d = %+v, want diverged+rolled-back", i, reports[i])
		}
	}
	// Region 2 escalates: its follower was still detached mid-region (so
	// its tail reads Degraded), but the exhausted budget blocks the
	// restore.
	if !reports[2].Diverged || reports[2].RolledBack {
		t.Errorf("region 2 = %+v, want diverged and not rolled back", reports[2])
	}
	// Everything after the escalation behaves like kill-both: diverged,
	// never rolled back, never leader-only.
	for i := 3; i < 5; i++ {
		if !reports[i].Diverged || reports[i].RolledBack || reports[i].Degraded {
			t.Errorf("region %d = %+v, want kill-both behaviour", i, reports[i])
		}
	}
	// Once escalated, checkpoints stop: only the three pre-escalation
	// regions captured one.
	if n := eventCount(rec, obs.EvSnapshot); n != 3 {
		t.Errorf("EvSnapshot count = %d, want 3 (none after escalation)", n)
	}
}
