package core

import (
	"sync"
	"testing"

	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
)

// TestUnrelatedThreadPassesThroughDuringRegion: a second application
// thread (outside the variant pair) keeps making libc calls while a
// protected region is active; the trampoline passes it straight through
// (Section 3.4's multi-threading support via per-thread TLS safe stacks).
func TestUnrelatedThreadPassesThroughDuringRegion(t *testing.T) {
	env, mon := testApp(t)
	defineProtected(t, env)

	// The protected function blocks until the side thread has proven it
	// can make calls mid-region: synchronize via Go channels standing in
	// for app-level synchronization. Both variants run this closure, so
	// the region-entry signal closes once and the completion gate is a
	// closed-channel broadcast.
	enterRegion := make(chan struct{})
	var enterOnce sync.Once
	sideFinished := make(chan struct{})
	sideDone := make(chan error, 1)
	env.Prog.MustDefine("diverge_call", func(th *machine.Thread, args []uint64) uint64 {
		enterOnce.Do(func() { close(enterRegion) })
		<-sideFinished // wait for the side thread's work
		g := th.Global("g_buf")
		th.Libc("gettimeofday", uint64(g), 0)
		return 0
	})

	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}

	// Side thread: issues libc calls once the region is active.
	side, err := env.Machine.NewThread("side", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Init(side); err != nil {
		t.Fatal(err)
	}
	go func() {
		<-enterRegion
		sideDone <- side.Run(func(tt *machine.Thread) {
			g := tt.Global("g_buf")
			p := tt.Libc("malloc", 32)
			tt.Libc("free", p)
			tt.WriteCString(g+512, "/side.txt")
			fd := tt.Libc("open", uint64(g+512), uint64(kernel.OCreat|kernel.OWronly))
			tt.Libc("close", fd)
		})
		close(sideFinished)
	}()

	runErr := th.Run(func(tt *machine.Thread) {
		if err := mon.Start(tt, "diverge_call"); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		tt.Call("diverge_call")
		_ = mon.End(tt)
	})
	if runErr != nil {
		t.Fatalf("leader: %v", runErr)
	}
	if err := <-sideDone; err != nil {
		t.Fatalf("side thread: %v", err)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("side-thread traffic caused alarms: %v", alarms)
	}
	if !env.Kernel.FS().Exists("/side.txt") {
		t.Error("side thread's passthrough write missing")
	}
}

// TestVariadicManyArgsUnderLockstep pushes a 7-argument snprintf (stack
// arguments + variadic %rax convention) through the trampoline in a
// protected region — the exact case the paper's stack-rebuild supports
// (Section 3.4: "variadic libc calls and libc calls with more than six
// parameters").
func TestVariadicManyArgsUnderLockstep(t *testing.T) {
	env, mon := testApp(t)
	env.Prog.MustDefine("protected_func", func(th *machine.Thread, args []uint64) uint64 {
		g := th.Global("g_buf")
		fmtAddr := g + 512
		th.WriteCString(fmtAddr, "%d-%d-%d-%d")
		// snprintf(dst, size, fmt, a, b, c, d): 7 arguments.
		th.Libc("snprintf", uint64(g), 64, uint64(fmtAddr), 1, 2, 3, 4)
		if th.CString(g, 64) != "1-2-3-4" {
			return 1
		}
		return 0
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	var rc uint64
	err := th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "protected_func")
		rc = tt.Call("protected_func")
		_ = mon.End(tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc != 0 {
		t.Error("7-arg snprintf mangled its output under lockstep")
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms: %v", alarms)
	}
}
