package core

// Majority voting over the variant set.
//
// With a single follower a rendezvous is a pairwise compare: any
// disagreement is a divergence and the paper's kill-both verdict applies to
// the pair. With N-1 followers the same disagreement carries more
// information — a single corrupted variant is outvoted by the agreeing
// majority, which keeps serving while only the minority is quarantined
// through the existing detach/restart/rollback policies. The vote uses the
// exact equivalence the pairwise compare uses: same libc call name and no
// scalar-argument mismatch under scalarArgMask (pointer arguments
// legitimately differ between the variants' address windows).

// Ballot is one variant's half of an N-way rendezvous: the libc call it
// arrived with. Ballot 0 is always the leader. Invalid ballots (a record
// that failed to decode) never join an agreement class and are always
// among the losers.
type Ballot struct {
	// Variant is the dense variant index casting this ballot.
	Variant VariantID
	// Name is the libc call the variant issued.
	Name string
	// Args are the call's raw argument values.
	Args []uint64
	// Valid marks a ballot that decoded correctly and may join a class.
	Valid bool
}

// VoteResult is the outcome of one majority vote.
type VoteResult struct {
	// Winner is the lowest ballot index inside the winning agreement class.
	Winner int
	// Losers are the ballot indices outside the winning class (including
	// invalid ballots), in ascending order.
	Losers []int
	// Majority is the winning class's size.
	Majority int
}

// ballotsAgree is the vote's equivalence relation — the pairwise
// rendezvous checks, applied symmetrically.
func ballotsAgree(a, b Ballot) bool {
	if a.Name != b.Name {
		return false
	}
	bad, _, _ := scalarMismatch(a.Name, a.Args, b.Args)
	return !bad
}

// Vote partitions the ballots into agreement classes (greedily, in ballot
// order, comparing against each class's first member) and elects the
// largest class; ties break toward the class containing the lowest ballot
// index, so a split vote never outvotes the leader.
func Vote(ballots []Ballot) VoteResult {
	classes := [][]int{} // each class holds ascending ballot indices
	for i, b := range ballots {
		if !b.Valid {
			continue
		}
		placed := false
		for ci, cls := range classes {
			if ballotsAgree(ballots[cls[0]], b) {
				classes[ci] = append(cls, i)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{i})
		}
	}
	// Largest class wins; classes were formed in ballot order, so the first
	// maximal class is the one containing the lowest index.
	best := -1
	for ci, cls := range classes {
		if best < 0 || len(cls) > len(classes[best]) {
			best = ci
		}
	}
	res := VoteResult{Winner: -1}
	if best < 0 {
		// No valid ballots at all: everyone loses.
		for i := range ballots {
			res.Losers = append(res.Losers, i)
		}
		return res
	}
	win := classes[best]
	res.Winner = win[0]
	res.Majority = len(win)
	inWin := make(map[int]bool, len(win))
	for _, i := range win {
		inWin[i] = true
	}
	for i := range ballots {
		if !inWin[i] {
			res.Losers = append(res.Losers, i)
		}
	}
	return res
}
