package core

import (
	"testing"

	"smvx/internal/sim/machine"
)

// TestVariantReuseCorrectness runs repeated protected regions under the
// Section 5 pre-scan mitigation and checks lockstep still holds.
func TestVariantReuseCorrectness(t *testing.T) {
	env, _ := testApp(t)
	mon := New(env.Machine, env.LibC, WithSeed(11), WithVariantReuse())
	defineProtected(t, env)
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	err := th.Run(func(tt *machine.Thread) {
		for i := 0; i < 4; i++ {
			if err := mon.Start(tt, "protected_func"); err != nil {
				t.Errorf("Start #%d: %v", i, err)
				return
			}
			tt.Call("protected_func")
			if err := mon.End(tt); err != nil {
				t.Errorf("End #%d: %v", i, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Fatalf("alarms under reuse: %v", alarms)
	}
	if got := len(mon.Reports()); got != 4 {
		t.Errorf("reports = %d", got)
	}
}

// TestVariantReuseMovesCreationOffWallPath compares the wall-time cost of
// the second region's creation with and without reuse: refresh runs off
// the critical path.
func TestVariantReuseMovesCreationOffWallPath(t *testing.T) {
	run := func(reuse bool) (secondRegionWall uint64) {
		env, _ := testApp(t)
		opts := []Option{WithSeed(11)}
		if reuse {
			opts = append(opts, WithVariantReuse())
		}
		mon := New(env.Machine, env.LibC, opts...)
		defineProtected(t, env)
		th, _ := env.Machine.NewThread("main", 0)
		if err := mon.Init(th); err != nil {
			t.Fatal(err)
		}
		var wall uint64
		err := th.Run(func(tt *machine.Thread) {
			// First region: both modes pay full creation.
			_ = mon.Start(tt, "protected_func")
			tt.Call("protected_func")
			_ = mon.End(tt)
			// Second region: reuse refreshes off the wall path.
			before := env.Wall.Cycles()
			_ = mon.Start(tt, "protected_func")
			tt.Call("protected_func")
			_ = mon.End(tt)
			wall = uint64(env.Wall.Cycles() - before)
		})
		if err != nil {
			t.Fatal(err)
		}
		if alarms := mon.Alarms(); len(alarms) != 0 {
			t.Fatalf("alarms (reuse=%v): %v", reuse, alarms)
		}
		return wall
	}
	withReuse := run(true)
	without := run(false)
	if withReuse >= without {
		t.Errorf("reuse second-region wall (%d) should undercut fresh creation (%d)", withReuse, without)
	}
}

// TestVariantReuseStillDetectsAttack ensures the security property
// survives the optimization: a hijack in a reused region is still caught.
func TestVariantReuseStillDetectsAttack(t *testing.T) {
	env, _ := testApp(t)
	mon := New(env.Machine, env.LibC, WithSeed(11), WithVariantReuse())
	defineProtected(t, env)

	// A benign region first (populates the reusable variant)...
	vulnSym, _ := env.Img.Lookup("hijack_func")
	gadget := findGadget(t, env, vulnSym, 0x5F /* pop rdi */)
	env.Prog.MustDefine("hijack_func", func(th *machine.Thread, args []uint64) uint64 {
		buf := th.Alloca(16)
		payload := make([]byte, 0, 40)
		payload = append(payload, le(1)...)
		payload = append(payload, le(2)...)
		payload = append(payload, le(uint64(gadget))...)
		payload = append(payload, le(3)...)
		payload = append(payload, le(0)...)
		th.WriteBytes(buf, payload)
		return 0
	})
	th, _ := env.Machine.NewThread("main", 0)
	if err := mon.Init(th); err != nil {
		t.Fatal(err)
	}
	_ = th.Run(func(tt *machine.Thread) {
		_ = mon.Start(tt, "protected_func")
		tt.Call("protected_func")
		_ = mon.End(tt)
		// ...then the attacked region reuses the variant. The leader's
		// own gadget chain crashes it, unwinding out of this Run.
		_ = mon.Start(tt, "hijack_func")
		tt.Call("hijack_func")
	})
	// Join the follower (what a crash handler around mvx_end would do).
	_ = mon.End(th)
	var sawFault bool
	for _, a := range mon.Alarms() {
		if a.Reason == AlarmFollowerFault {
			sawFault = true
		}
	}
	if !sawFault {
		t.Errorf("reused variant failed to detect hijack; alarms = %v", mon.Alarms())
	}
}
