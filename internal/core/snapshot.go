package core

// Survivable MVX: copy-on-write variant checkpoints and the PolicyRollback
// recovery engine.
//
// Production MVX deployments treat a divergence as terminal: kill both
// variants (the paper's answer) or degrade to single-variant execution
// (dMVX-style detach). Both give up something — availability or the
// security property itself. The rollback policy keeps both: at a
// configurable virtual-cycle cadence the monitor captures a checkpoint of
// the whole variant pair at a quiescent rendezvous — the address space
// under a copy-on-write memory snapshot (region table, permissions, MPK
// keys, taint tags; see internal/sim/mem/snapshot.go), both variants'
// thread register and stack state, the pipeline ring cursors, and the
// libc-call ordinal. Every leader→follower emulation-buffer write after
// the capture is appended to a redo log. When a divergence fires, the
// monitor waits for the severed follower to wind down, restores both
// variants to the last common checkpoint in place, replays the
// post-snapshot libc tail from the redo log through the emulation write
// path (the kernel-sourced inputs are trusted; the variants' own
// post-checkpoint state is not), and re-arms full lockstep at the restored
// ordinal: the next protected region enters with a freshly cloned
// follower, never the degraded single-variant mode. Consecutive rollbacks
// pinned to the same root-cause ordinal make no forward progress; after
// RollbackBudget of them the monitor escalates to the paper's kill-both.

import (
	"fmt"
	"sync"

	"smvx/internal/obs"
	"smvx/internal/obs/ledger"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/machine"
	"smvx/internal/sim/mem"
)

// VariantSnapshot is one checkpoint of the full leader/follower pair,
// captured at a quiescent rendezvous: the ring is drained, no emulation is
// in flight, and both variants are parked at the same verified libc-call
// ordinal.
type VariantSnapshot struct {
	// Gen is the underlying memory snapshot's generation.
	Gen uint64
	// TS is the virtual-clock time of the capture.
	TS clock.Cycles
	// Ordinal is the session-local libc-call ordinal the checkpoint
	// anchors to — the rendezvous both variants had just verified.
	Ordinal uint64
	// Fn is the protected root function of the capturing region.
	Fn string
	// Mem is the copy-on-write address-space snapshot: leader and follower
	// regions, permissions, MPK keys, and taint tags, with per-page dirty
	// tracking armed until the next capture.
	Mem *mem.Snapshot
	// Leader and Follower are the variants' architectural thread states
	// (registers, stack top, call stack) at the capture rendezvous.
	// Follower is the first follower slot's state, kept for pair-era
	// consumers; Followers holds every parked follower in slot order.
	Leader, Follower obs.ThreadSnapshot
	Followers        []obs.ThreadSnapshot
	// RingDepth and Drained are the pipeline ring cursors at capture:
	// records in flight on the rendezvous ring (always 0 — captures anchor
	// to quiescent points) and records the follower had verified.
	RingDepth int
	Drained   uint64
	// EmulatedBytes is the session's leader→follower copy volume at
	// capture.
	EmulatedBytes uint64
}

// redoEntry is one leader→follower emulation-buffer write: the
// kernel-sourced bytes a libc call produced, re-applied verbatim on
// rollback.
type redoEntry struct {
	ordinal uint64
	name    string
	dst     mem.Addr
	data    []byte
}

// RedoLog accumulates the emulation-buffer writes performed since the last
// checkpoint — the post-snapshot libc tail a rollback replays. Appends
// come from the leader (strict emulate) or the follower (pipelined
// applyResult) goroutine; capture and replay happen with the other
// goroutine parked, but the mutex keeps every interleaving safe.
type RedoLog struct {
	mu      sync.Mutex
	entries []redoEntry
	bytes   int
}

// NewRedoLog returns an empty redo log.
func NewRedoLog() *RedoLog { return &RedoLog{} }

// Append records one emulation write. The data slice is retained; callers
// pass buffers they do not reuse.
func (l *RedoLog) Append(ordinal uint64, name string, dst mem.Addr, data []byte) {
	l.mu.Lock()
	l.entries = append(l.entries, redoEntry{ordinal: ordinal, name: name, dst: dst, data: data})
	l.bytes += len(data)
	l.mu.Unlock()
}

// Reset clears the log (a new checkpoint owns the tail from here).
func (l *RedoLog) Reset() {
	l.mu.Lock()
	l.entries = nil
	l.bytes = 0
	l.mu.Unlock()
}

// Len returns the number of logged writes.
func (l *RedoLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Bytes returns the total payload volume logged.
func (l *RedoLog) Bytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// snapshotDue reports whether the leader should capture a checkpoint at
// the current quiescent rendezvous: the first rendezvous of every region
// always checkpoints (so a rollback anchor exists before any fault can
// fire), and after that the cadence is SnapshotInterval virtual cycles.
// Leader goroutine only.
func (mo *Monitor) snapshotDue(s *session) bool {
	if mo.opts.Policy != PolicyRollback || mo.escalated.Load() {
		return false
	}
	if !s.snapped {
		return true
	}
	iv := mo.opts.SnapshotInterval
	return iv > 0 && mo.m.Counter().Cycles()-mo.lastSnapAt >= iv
}

// captureCheckpoint snapshots the variant set at a quiescent rendezvous.
// Called from the rendezvous paths with every arrived follower parked on
// its rendezvous reply (strict) or barrier reply (pipelined — the rings
// are drained), so the thread states and the shared address space are
// race-free. recs holds the parked followers' call records in slot order.
// The redo log restarts here: the checkpoint owns the tail.
func (mo *Monitor) captureCheckpoint(s *session, leader *machine.Thread, recs []*callRecord, name string, idx uint64) {
	start := mo.m.Counter().Cycles()
	ms := mo.m.AddressSpace().Snapshot()
	ringDepth := 0
	var drained uint64
	if len(s.slots) > 0 {
		ringDepth = len(s.slots[0].ring)
		drained = s.slots[0].drained
	}
	ck := &VariantSnapshot{
		Gen:           ms.Generation(),
		TS:            start,
		Ordinal:       idx,
		Fn:            s.fn,
		Mem:           ms,
		Leader:        mo.snapshot("leader", leader),
		RingDepth:     ringDepth,
		Drained:       drained,
		EmulatedBytes: s.emulatedBytes.Load(),
	}
	for _, rec := range recs {
		if rec == nil || rec.thread == nil {
			continue
		}
		fs := mo.snapshot("follower", rec.thread)
		if len(ck.Followers) == 0 {
			ck.Follower = fs
		}
		ck.Followers = append(ck.Followers, fs)
	}
	mo.redo.Reset()
	mo.mu.Lock()
	mo.ckpt = ck
	mo.snapshots++
	mo.mu.Unlock()
	s.snapped = true
	now := mo.m.Counter().Cycles()
	mo.lastSnapAt = now
	if lr := s.lr; lr != nil {
		lr.Add(ledger.PhaseSnapshot, obs.VariantLeader, ledger.ClassOf(name),
			now-start, ledger.Mark{}, uint64(ms.ResidentPages())*mem.PageSize)
	}
	if obsRec := mo.rec; obsRec != nil {
		obsRec.Record(obs.EvSnapshot, obs.VariantLeader, leader.TID(), s.fn,
			idx, uint64(ms.ResidentPages()), ms.Generation())
		m := obsRec.Metrics()
		m.Inc("snapshot.captured")
		m.Observe("snapshot.capture.cycles", uint64(now-start))
		m.SetGauge("snapshot.resident.pages", float64(ms.ResidentPages()))
	}
}

// Checkpoint returns the last captured variant checkpoint (nil before the
// first capture).
func (mo *Monitor) Checkpoint() *VariantSnapshot {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.ckpt
}

// Snapshots returns how many variant checkpoints the monitor captured.
func (mo *Monitor) Snapshots() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.snapshots
}

// Rollbacks returns how many rollback recoveries the monitor performed.
func (mo *Monitor) Rollbacks() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.rollbacks
}

// Escalated reports whether PolicyRollback exhausted its budget and
// escalated to kill-both.
func (mo *Monitor) Escalated() bool { return mo.escalated.Load() }

// maybeAbortRegion unwinds an abortable region whose follower is gone.
// Under PolicyRollback a dead follower means the leader's own remaining
// control flow is suspect — in the CVE-2013-2028 replay the leader is
// mid-ROP-chain at exactly this rendezvous — so instead of letting the
// region "wind down" (execute the attacker's payload and crash), control
// transfers back to the Invoke boundary, where End restores the
// checkpoint. A no-op under every other policy, for raw Start/Call/End
// callers (nothing to unwind to), once rollback has escalated, and before
// the first checkpoint exists.
func (s *session) maybeAbortRegion(t *machine.Thread, name string, idx uint64) {
	mo := s.mon
	if mo.opts.Policy != PolicyRollback || !s.abortable || mo.escalated.Load() {
		return
	}
	mo.mu.Lock()
	ck := mo.ckpt
	mo.mu.Unlock()
	if ck == nil {
		return
	}
	if mo.rec != nil {
		mo.rec.Metrics().Inc("rollback.region_aborts")
	}
	t.AbortRegion(s.fn, fmt.Sprintf(
		"follower dead at %s@call%d under rollback; unwinding to checkpoint gen %d",
		name, idx, ck.Gen))
}

// rollbackOutcome is what maybeRollback decided at region exit.
type rollbackOutcome int

const (
	rollbackNone      rollbackOutcome = iota // clean region, or policy inactive
	rollbackDone                             // restored + replayed
	rollbackEscalated                        // budget exhausted → kill-both
)

// maybeRollback runs the rollback decision at region exit, after the
// severed follower has wound down and the leader is the only thread
// touching the address space. On a diverged region it restores both
// variants to the last checkpoint, replays the redo tail through the
// emulation write path, and re-arms lockstep for the next region entry;
// consecutive same-ordinal rollbacks exhaust the budget and escalate to
// kill-both instead (the escalating region's alarms are re-marked
// unhandled — the paper's verdict stands). Returns what happened so End
// can fill the region report.
func (mo *Monitor) maybeRollback(s *session, leaderTID int, diverged bool) rollbackOutcome {
	if mo.opts.Policy != PolicyRollback || mo.escalated.Load() || s.leaderOnly {
		return rollbackNone
	}
	if !diverged {
		// Forward progress: a clean region resets the same-ordinal streak.
		mo.mu.Lock()
		mo.rollbackStreak = 0
		mo.lastRollbackOrdinal = 0
		mo.mu.Unlock()
		return rollbackNone
	}
	ord := s.rollbackCause.Load()
	if ord > 0 {
		ord-- // stored as ordinal+1; see raiseAlarm
	}
	mo.mu.Lock()
	ck := mo.ckpt
	if ord == mo.lastRollbackOrdinal && mo.rollbackStreak > 0 {
		mo.rollbackStreak++
	} else {
		mo.lastRollbackOrdinal = ord
		mo.rollbackStreak = 1
	}
	streak := mo.rollbackStreak
	exhausted := streak > mo.opts.RollbackBudget
	if exhausted {
		// Escalate: the streak's alarms — every divergence at this
		// root-cause ordinal — were provisionally absorbed (Handled) on
		// the promise a rollback would recover; that promise is now
		// broken, so the paper's unhandled verdict is reinstated for the
		// whole streak.
		for i := range mo.alarms {
			if mo.alarms[i].Handled && mo.alarms[i].Function == s.fn &&
				mo.alarms[i].CallIndex == ord {
				mo.alarms[i].Handled = false
			}
		}
	}
	mo.mu.Unlock()
	if exhausted {
		mo.escalated.Store(true)
		if obsRec := mo.rec; obsRec != nil {
			obsRec.Metrics().Inc("rollback.escalated")
		}
		return rollbackEscalated
	}
	if ck == nil {
		// Divergence before the first rendezvous of the first region:
		// nothing to restore, but the next region still re-arms full
		// lockstep (detachFollower never set the degraded flag).
		return rollbackNone
	}
	start := mo.m.Counter().Cycles()
	if err := mo.m.AddressSpace().Restore(ck.Mem); err != nil {
		// The checkpoint went stale (should not happen: only the monitor
		// captures snapshots). Surface it instead of silently skipping.
		if obsRec := mo.rec; obsRec != nil {
			obsRec.Metrics().Inc("rollback.restore_failed")
		}
		return rollbackNone
	}
	replayedBytes := mo.replayRedo()
	now := mo.m.Counter().Cycles()
	mo.mu.Lock()
	mo.rollbacks++
	mo.mu.Unlock()
	if lr := s.lr; lr != nil {
		lr.Add(ledger.PhaseRestore, obs.VariantLeader, ledger.ClassUnknown,
			now-start, ledger.Mark{}, uint64(replayedBytes))
	}
	if obsRec := mo.rec; obsRec != nil {
		obsRec.Record(obs.EvRollback, obs.VariantLeader, leaderTID, s.fn,
			ord, uint64(now-start), ck.Gen)
		m := obsRec.Metrics()
		m.Inc("rollback.count")
		m.Observe("rollback.recovery.cycles", uint64(now-start))
		m.Add("rollback.redo.bytes", uint64(replayedBytes))
		m.SetGauge("rollback.streak", float64(streak))
	}
	return rollbackDone
}

// replayRedo re-applies the post-snapshot libc tail: every emulation
// write logged since the restored checkpoint lands again through the same
// address-space write path (with taint propagation and the per-byte copy
// charge), bringing the kernel-sourced inputs forward over the rewound
// memory. Returns bytes replayed. The log survives the replay — it still
// describes the tail of the active checkpoint, and a repeat rollback to
// the same checkpoint replays the same tail.
func (mo *Monitor) replayRedo() int {
	as := mo.m.AddressSpace()
	costs := mo.m.Costs()
	total := 0
	mo.redo.mu.Lock()
	entries := append([]redoEntry(nil), mo.redo.entries...)
	mo.redo.mu.Unlock()
	for _, e := range entries {
		if err := as.WriteAt(e.dst, e.data); err != nil {
			// The destination page vanished with the rewind (it was born
			// after the capture); the write that created it replays later
			// in the log, so a miss here is not fatal.
			continue
		}
		total += len(e.data)
	}
	mo.m.ChargeThread(nil, costs.LockstepCopyPerByte*cyclesOf(total))
	return total
}
