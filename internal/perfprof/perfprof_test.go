package perfprof

import (
	"strings"
	"testing"

	"smvx/internal/sim/clock"
)

func TestInclusiveAttribution(t *testing.T) {
	p := New()
	// main -> worker -> handler, with inclusive cycles reported at exit.
	p.OnEnter(1, "main")
	p.OnEnter(1, "worker")
	p.OnEnter(1, "handler")
	p.OnExit(1, "handler", 100)
	p.OnExit(1, "worker", 300)
	p.OnExit(1, "main", 1000)

	if got := p.Inclusive("main"); got != 1000 {
		t.Errorf("main inclusive = %d", got)
	}
	if got := p.Inclusive("worker"); got != 300 {
		t.Errorf("worker inclusive = %d", got)
	}
	if got := p.Calls("handler"); got != 1 {
		t.Errorf("handler calls = %d", got)
	}
}

func TestRecursionNotDoubleCounted(t *testing.T) {
	p := New()
	p.OnEnter(1, "f")
	p.OnEnter(1, "f") // recursive
	p.OnExit(1, "f", 50)
	p.OnExit(1, "f", 200)
	if got := p.Inclusive("f"); got != 200 {
		t.Errorf("recursive inclusive = %d, want 200 (outermost only)", got)
	}
	if got := p.Calls("f"); got != 1 {
		t.Errorf("recursive calls = %d, want 1", got)
	}
}

func TestRepeatedCallsAccumulate(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		p.OnEnter(1, "req")
		p.OnExit(1, "req", 10)
	}
	if got := p.Inclusive("req"); got != 30 {
		t.Errorf("inclusive = %d", got)
	}
	if got := p.Calls("req"); got != 3 {
		t.Errorf("calls = %d", got)
	}
}

func TestThreadsIndependent(t *testing.T) {
	p := New()
	p.OnEnter(1, "a")
	p.OnEnter(2, "a")
	p.OnExit(2, "a", 5)
	p.OnExit(1, "a", 7)
	if got := p.Inclusive("a"); got != 12 {
		t.Errorf("cross-thread inclusive = %d", got)
	}
}

func TestPercentAndReport(t *testing.T) {
	p := New()
	p.OnEnter(1, "big")
	p.OnExit(1, "big", 600)
	p.OnEnter(1, "small")
	p.OnExit(1, "small", 100)

	if got := p.Percent("big", 1000); got != 60 {
		t.Errorf("Percent = %v", got)
	}
	if got := p.Percent("big", 0); got != 0 {
		t.Errorf("Percent with zero total = %v", got)
	}
	rep := p.Report()
	if len(rep) != 2 || rep[0].Fn != "big" || rep[1].Fn != "small" {
		t.Errorf("Report = %+v", rep)
	}
}

func TestFlameTextAndReset(t *testing.T) {
	p := New()
	p.OnEnter(1, "hot")
	p.OnExit(1, "hot", clock.Cycles(900))
	out := p.FlameText(1000)
	if !strings.Contains(out, "hot") || !strings.Contains(out, "90.0%") {
		t.Errorf("FlameText:\n%s", out)
	}
	p.Reset()
	if p.Inclusive("hot") != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestExitWithoutEnterIgnored(t *testing.T) {
	p := New()
	p.OnExit(1, "ghost", 50)
	if p.Inclusive("ghost") != 0 {
		t.Error("unbalanced exit should be ignored")
	}
}
