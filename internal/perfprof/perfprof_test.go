package perfprof

import (
	"strings"
	"testing"

	"smvx/internal/obs"
	"smvx/internal/sim/clock"
)

func TestInclusiveAttribution(t *testing.T) {
	p := New()
	// main -> worker -> handler, with inclusive cycles reported at exit.
	p.OnEnter(1, "main")
	p.OnEnter(1, "worker")
	p.OnEnter(1, "handler")
	p.OnExit(1, "handler", 100)
	p.OnExit(1, "worker", 300)
	p.OnExit(1, "main", 1000)

	if got := p.Inclusive("main"); got != 1000 {
		t.Errorf("main inclusive = %d", got)
	}
	if got := p.Inclusive("worker"); got != 300 {
		t.Errorf("worker inclusive = %d", got)
	}
	if got := p.Calls("handler"); got != 1 {
		t.Errorf("handler calls = %d", got)
	}
}

func TestRecursionNotDoubleCounted(t *testing.T) {
	p := New()
	p.OnEnter(1, "f")
	p.OnEnter(1, "f") // recursive
	p.OnExit(1, "f", 50)
	p.OnExit(1, "f", 200)
	if got := p.Inclusive("f"); got != 200 {
		t.Errorf("recursive inclusive = %d, want 200 (outermost only)", got)
	}
	if got := p.Calls("f"); got != 1 {
		t.Errorf("recursive calls = %d, want 1", got)
	}
}

func TestRepeatedCallsAccumulate(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		p.OnEnter(1, "req")
		p.OnExit(1, "req", 10)
	}
	if got := p.Inclusive("req"); got != 30 {
		t.Errorf("inclusive = %d", got)
	}
	if got := p.Calls("req"); got != 3 {
		t.Errorf("calls = %d", got)
	}
}

func TestThreadsIndependent(t *testing.T) {
	p := New()
	p.OnEnter(1, "a")
	p.OnEnter(2, "a")
	p.OnExit(2, "a", 5)
	p.OnExit(1, "a", 7)
	if got := p.Inclusive("a"); got != 12 {
		t.Errorf("cross-thread inclusive = %d", got)
	}
}

func TestPercentAndReport(t *testing.T) {
	p := New()
	p.OnEnter(1, "big")
	p.OnExit(1, "big", 600)
	p.OnEnter(1, "small")
	p.OnExit(1, "small", 100)

	if got := p.Percent("big", 1000); got != 60 {
		t.Errorf("Percent = %v", got)
	}
	if got := p.Percent("big", 0); got != 0 {
		t.Errorf("Percent with zero total = %v", got)
	}
	rep := p.Report()
	if len(rep) != 2 || rep[0].Fn != "big" || rep[1].Fn != "small" {
		t.Errorf("Report = %+v", rep)
	}
}

func TestFlameTextAndReset(t *testing.T) {
	p := New()
	p.OnEnter(1, "hot")
	p.OnExit(1, "hot", clock.Cycles(900))
	out := p.FlameText(1000)
	if !strings.Contains(out, "hot") || !strings.Contains(out, "90.0%") {
		t.Errorf("FlameText:\n%s", out)
	}
	p.Reset()
	if p.Inclusive("hot") != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestExitWithoutEnterIgnored(t *testing.T) {
	p := New()
	p.OnExit(1, "ghost", 50)
	if p.Inclusive("ghost") != 0 {
		t.Error("unbalanced exit should be ignored")
	}
}

func TestFromTrace(t *testing.T) {
	events := []obs.Event{
		// Nested pair on tid 1: recv spans 100..400, with a memcpy inside.
		{Kind: obs.EvLibcEnter, TID: 1, Name: "recv", TS: 100},
		{Kind: obs.EvLibcEnter, TID: 1, Name: "memcpy", TS: 150},
		{Kind: obs.EvLibcExit, TID: 1, Name: "memcpy", TS: 170},
		{Kind: obs.EvLibcExit, TID: 1, Name: "recv", TS: 400},
		// Independent thread.
		{Kind: obs.EvLibcEnter, TID: 2, Name: "send", TS: 50},
		{Kind: obs.EvLibcExit, TID: 2, Name: "send", TS: 90},
		// Exit whose enter was evicted from the ring: skipped.
		{Kind: obs.EvLibcExit, TID: 3, Name: "orphan", TS: 10},
		// Non-libc events are ignored.
		{Kind: obs.EvPKRUWrite, TID: 1, Name: "activate-prot", TS: 500},
	}
	p := FromTrace(events)
	if got := p.Inclusive("recv"); got != 300 {
		t.Errorf("recv inclusive = %d, want 300", got)
	}
	if got := p.Inclusive("memcpy"); got != 20 {
		t.Errorf("memcpy inclusive = %d, want 20", got)
	}
	if got := p.Inclusive("send"); got != 40 {
		t.Errorf("send inclusive = %d, want 40", got)
	}
	if got := p.Calls("recv"); got != 1 {
		t.Errorf("recv calls = %d", got)
	}
	if p.Inclusive("orphan") != 0 {
		t.Error("orphan exit (evicted enter) should be skipped")
	}
	rep := p.Report()
	if len(rep) != 3 || rep[0].Fn != "recv" {
		t.Errorf("Report = %+v", rep)
	}
}

func TestFromTraceRecorder(t *testing.T) {
	// End to end: events recorded through a live Recorder replay into the
	// same flame summary shape a live profiler would give.
	rec := obs.NewRecorder(obs.Config{Capacity: 64})
	rec.Record(obs.EvLibcEnter, obs.VariantLeader, 1, "read", 0, 0, 0)
	rec.Record(obs.EvLibcExit, obs.VariantLeader, 1, "read", 0, 0, 0)
	p := FromTrace(rec.Events())
	if got := p.Calls("read"); got != 1 {
		t.Errorf("read calls = %d", got)
	}
	if !strings.Contains(p.FlameText(100), "read") {
		t.Error("flame text missing the replayed call")
	}
}
