// Package perfprof is the simulation's equivalent of `perf` plus a flame
// graph: it attributes CPU cycles to functions, inclusive of callees, so
// the evaluation can ask "what fraction of total cycles does the outermost
// tainted function consume?" — the measurement behind the paper's CPU-
// cycles-saved experiment (Section 4.1: ngx_http_process_request_line at
// 60.8%, server_main_loop at 70%).
package perfprof

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"smvx/internal/obs"
	"smvx/internal/sim/clock"
	"smvx/internal/sim/machine"
)

// Sample is one function's aggregate in the profile.
type Sample struct {
	// Fn is the function name.
	Fn string
	// Inclusive is the cycles spent in the function and its callees,
	// counting only outermost occurrences (recursion is not double
	// counted).
	Inclusive clock.Cycles
	// Calls is the number of outermost invocations.
	Calls uint64
}

// Profiler collects per-function inclusive cycles. Install it with
// machine.SetProfiler; it is safe for concurrent threads.
type Profiler struct {
	mu     sync.Mutex
	stacks map[int][]string
	incl   map[string]clock.Cycles
	calls  map[string]uint64
}

var _ machine.Profiler = (*Profiler)(nil)

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{
		stacks: make(map[int][]string),
		incl:   make(map[string]clock.Cycles),
		calls:  make(map[string]uint64),
	}
}

// OnEnter implements machine.Profiler.
func (p *Profiler) OnEnter(tid int, fn string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stacks[tid] = append(p.stacks[tid], fn)
}

// OnExit implements machine.Profiler.
func (p *Profiler) OnExit(tid int, fn string, inclusive clock.Cycles) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stacks[tid]
	if len(st) == 0 {
		return
	}
	p.stacks[tid] = st[:len(st)-1]
	// Attribute only the outermost occurrence so recursive or repeated
	// frames don't double count.
	for _, f := range p.stacks[tid] {
		if f == fn {
			return
		}
	}
	p.incl[fn] += inclusive
	p.calls[fn]++
}

// Inclusive returns fn's inclusive cycles.
func (p *Profiler) Inclusive(fn string) clock.Cycles {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.incl[fn]
}

// Calls returns fn's outermost call count.
func (p *Profiler) Calls(fn string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[fn]
}

// Percent returns fn's share of total cycles, as the flame graph shows it.
func (p *Profiler) Percent(fn string, total clock.Cycles) float64 {
	if total == 0 {
		return 0
	}
	return float64(p.Inclusive(fn)) / float64(total) * 100
}

// Report returns all samples sorted by inclusive cycles, descending.
func (p *Profiler) Report() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Sample, 0, len(p.incl))
	for fn, c := range p.incl {
		out = append(out, Sample{Fn: fn, Inclusive: c, Calls: p.calls[fn]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inclusive != out[j].Inclusive {
			return out[i].Inclusive > out[j].Inclusive
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// FlameText renders a textual flame-graph summary: each function's share of
// total, widest first.
func (p *Profiler) FlameText(total clock.Cycles) string {
	var b strings.Builder
	b.WriteString("flame graph (inclusive cycles, % of total)\n")
	for _, s := range p.Report() {
		pct := 0.0
		if total > 0 {
			pct = float64(s.Inclusive) / float64(total) * 100
		}
		bar := int(pct / 2)
		if bar > 50 {
			bar = 50
		}
		fmt.Fprintf(&b, "%-40s %8.1f%% |%s\n", s.Fn, pct, strings.Repeat("#", bar))
	}
	return b.String()
}

// FromTrace builds a profiler from a flight-recorder event stream: each
// libc enter/exit pair becomes one sample attributed to the call name, with
// the virtual-clock delta between the two events as its inclusive cost. The
// resulting profiler renders through Report/FlameText like a live one, so a
// flame summary is derivable from a saved trace alone.
func FromTrace(events []obs.Event) *Profiler {
	p := New()
	open := make(map[int][]obs.Event) // tid -> pending enter events
	for _, e := range events {
		switch e.Kind {
		case obs.EvLibcEnter:
			open[e.TID] = append(open[e.TID], e)
			p.OnEnter(e.TID, e.Name)
		case obs.EvLibcExit:
			st := open[e.TID]
			if len(st) == 0 {
				// The matching enter was evicted from the ring; skip.
				continue
			}
			enter := st[len(st)-1]
			open[e.TID] = st[:len(st)-1]
			var d clock.Cycles
			if e.TS > enter.TS {
				d = e.TS - enter.TS
			}
			p.OnExit(e.TID, enter.Name, d)
		}
	}
	return p
}

// Reset clears all samples.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stacks = make(map[int][]string)
	p.incl = make(map[string]clock.Cycles)
	p.calls = make(map[string]uint64)
}
