package perfprof

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"smvx/internal/sim/clock"
	"smvx/internal/sim/kernel"
	"smvx/internal/sim/machine"
)

// Sampler is the virtual-cycle sampling profiler: installed with
// machine.SetCycleSampler it receives one call-stack sample per period of
// thread-attributed work, and installed with kernel's SetCycleTicker it
// accumulates syscall cycles under a synthetic [kernel] root. Samples
// aggregate into folded stacks — semicolon-separated frames with a
// trailing count, the input format of flamegraph.pl and inferno — with
// the variant ("leader"/"follower") as the root frame.
type Sampler struct {
	period clock.Cycles

	mu        sync.Mutex
	folded    map[string]uint64
	samples   uint64
	kernelAcc map[int]clock.Cycles
}

var (
	_ machine.CycleSampler = (*Sampler)(nil)
	_ kernel.CycleTicker   = (*Sampler)(nil)
)

// NewSampler creates a sampler; non-positive period selects
// machine.DefaultSamplePeriod.
func NewSampler(period clock.Cycles) *Sampler {
	if period <= 0 {
		period = machine.DefaultSamplePeriod
	}
	return &Sampler{
		period:    period,
		folded:    make(map[string]uint64),
		kernelAcc: make(map[int]clock.Cycles),
	}
}

// Period returns the sampling interval in virtual cycles.
func (s *Sampler) Period() clock.Cycles { return s.period }

// Sample implements machine.CycleSampler.
func (s *Sampler) Sample(tid int, follower bool, stack []string, n uint64) {
	if n == 0 || len(stack) == 0 {
		return
	}
	root := "leader"
	if follower {
		root = "follower"
	}
	key := root + ";" + strings.Join(stack, ";")
	s.mu.Lock()
	s.folded[key] += n
	s.samples += n
	s.mu.Unlock()
}

// TickSyscall implements kernel.CycleTicker: kernel work has no user call
// stack, so charges accumulate per process and fold under "[kernel];name".
func (s *Sampler) TickSyscall(pid int, name string, c clock.Cycles) {
	s.mu.Lock()
	acc := s.kernelAcc[pid] + c
	if acc >= s.period {
		n := uint64(acc / s.period)
		acc %= s.period
		s.folded["[kernel];"+name] += n
		s.samples += n
	}
	s.kernelAcc[pid] = acc
	s.mu.Unlock()
}

// Samples returns the total number of samples taken.
func (s *Sampler) Samples() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Folded renders the profile as folded stacks, one "frame;frame;... count"
// line per unique stack, sorted by count descending then stack name — feed
// it to flamegraph.pl / inferno, or read the top line as the hottest path.
func (s *Sampler) Folded() string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.folded))
	for k := range s.folded {
		keys = append(keys, k)
	}
	counts := make(map[string]uint64, len(keys))
	for k, v := range s.folded {
		counts[k] = v
	}
	s.mu.Unlock()

	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, counts[k])
	}
	return b.String()
}

// Hottest returns the most-sampled folded stack and its sample count.
func (s *Sampler) Hottest() (stack string, count uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.folded {
		if v > count || (v == count && k < stack) {
			stack, count = k, v
		}
	}
	return stack, count
}

// HottestLeaf aggregates samples by leaf frame (the function on-CPU at
// sample time) and returns the hottest one — the workload's hot function.
func (s *Sampler) HottestLeaf() (fn string, count uint64) {
	s.mu.Lock()
	leaves := make(map[string]uint64)
	for k, v := range s.folded {
		leaves[k[strings.LastIndexByte(k, ';')+1:]] += v
	}
	s.mu.Unlock()
	for k, v := range leaves {
		if v > count || (v == count && k < fn) {
			fn, count = k, v
		}
	}
	return fn, count
}

// Reset clears all samples and accumulators.
func (s *Sampler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.folded = make(map[string]uint64)
	s.samples = 0
	s.kernelAcc = make(map[int]clock.Cycles)
}
