package perfprof

import (
	"strings"
	"testing"
)

func TestSamplerFoldedOutput(t *testing.T) {
	s := NewSampler(100)
	if s.Period() != 100 {
		t.Fatalf("period = %d", s.Period())
	}
	stack := []string{"main", "ngx_worker_process_cycle", "ngx_http_process_request_line"}
	s.Sample(1, false, stack, 3)
	s.Sample(1, false, stack[:2], 1)
	s.Sample(2, true, stack, 2)
	s.Sample(1, false, nil, 5)   // empty stack dropped
	s.Sample(1, false, stack, 0) // zero periods dropped

	if got := s.Samples(); got != 6 {
		t.Errorf("samples = %d, want 6", got)
	}
	folded := s.Folded()
	lines := strings.Split(strings.TrimRight(folded, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("folded lines = %d:\n%s", len(lines), folded)
	}
	// Sorted by count descending: the 3-sample leader stack first.
	if lines[0] != "leader;main;ngx_worker_process_cycle;ngx_http_process_request_line 3" {
		t.Errorf("top line = %q", lines[0])
	}
	if !strings.Contains(folded, "follower;main;ngx_worker_process_cycle;ngx_http_process_request_line 2") {
		t.Errorf("missing follower stack:\n%s", folded)
	}

	if top, n := s.Hottest(); n != 3 || !strings.HasPrefix(top, "leader;") {
		t.Errorf("hottest = %q %d", top, n)
	}
	// Leaf aggregation: request_line has 3 (leader) + 2 (follower) = 5.
	if fn, n := s.HottestLeaf(); fn != "ngx_http_process_request_line" || n != 5 {
		t.Errorf("hottest leaf = %q %d", fn, n)
	}
}

func TestSamplerKernelTicks(t *testing.T) {
	s := NewSampler(1000)
	// 600 + 600 crosses one period; next 1000 crosses another.
	s.TickSyscall(7, "read", 600)
	s.TickSyscall(7, "read", 600)
	s.TickSyscall(7, "epoll_wait", 1000)
	if got := s.Samples(); got != 2 {
		t.Errorf("samples = %d, want 2", got)
	}
	folded := s.Folded()
	if !strings.Contains(folded, "[kernel];read 1") {
		t.Errorf("missing kernel read sample:\n%s", folded)
	}
	if !strings.Contains(folded, "[kernel];epoll_wait 1") {
		t.Errorf("missing kernel epoll sample:\n%s", folded)
	}
	s.Reset()
	if s.Samples() != 0 || s.Folded() != "" {
		t.Error("reset did not clear")
	}
}
