package smvx

// bench_test.go regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks, one per artifact, plus ablation
// benches for the design choices DESIGN.md calls out. Reported metrics are
// simulated quantities (overhead percentages, microseconds, counts) —
// ns/op measures only harness time.
//
// Run: go test -bench=. -benchmem

import (
	"testing"

	"smvx/internal/apps/nginx"
	"smvx/internal/boot"
	"smvx/internal/core"
	"smvx/internal/experiments"
	"smvx/internal/libc"
	"smvx/internal/sim/kernel"
	"smvx/internal/workload"
)

// BenchmarkTable1_LibcEmulationCategories regenerates Table 1: the libc
// calls in each emulation category.
func BenchmarkTable1_LibcEmulationCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	counts := map[libc.Category]int{}
	for _, n := range libc.Names() {
		counts[libc.CategoryOf(n)]++
	}
	b.ReportMetric(float64(counts[libc.CatRetOnly]), "ret-only")
	b.ReportMetric(float64(counts[libc.CatRetBuf]), "ret+buf")
	b.ReportMetric(float64(counts[libc.CatSpecial]), "special")
	b.ReportMetric(float64(len(libc.Names())), "total-libc")
}

// BenchmarkFigure6_NbenchOverhead regenerates Figure 6: nbench normalized
// performance under sMVX (paper: ~7% mean, Neural Net highest at ~16%).
func BenchmarkFigure6_NbenchOverhead(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure6(1_500_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean*100, "mean-overhead-%")
	for _, row := range res.Rows {
		if row.Name == "Neural Net" {
			b.ReportMetric(row.Overhead*100, "neuralnet-overhead-%")
		}
	}
}

// BenchmarkFigure7_ServerThroughput regenerates Figure 7: nginx and
// lighttpd under sMVX vs ReMon (paper: 266% and 223%; libc:syscall ratios
// 5.4 and 7.8).
func BenchmarkFigure7_ServerThroughput(b *testing.B) {
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7(30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Nginx.SMVXOverhead*100, "nginx-smvx-%")
	b.ReportMetric(res.Lighttpd.SMVXOverhead*100, "lighttpd-smvx-%")
	b.ReportMetric(res.Nginx.ReMonOverhead*100, "nginx-remon-%")
	b.ReportMetric(res.Lighttpd.ReMonOverhead*100, "lighttpd-remon-%")
	b.ReportMetric(res.Nginx.LibcSyscallRatio, "nginx-libc/sys")
	b.ReportMetric(res.Lighttpd.LibcSyscallRatio, "lighttpd-libc/sys")
}

// BenchmarkFigure8_LibcCallsPerRegion regenerates Figure 8: libc calls
// within the protected region as the root function shrinks.
func BenchmarkFigure8_LibcCallsPerRegion(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure8(60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].LibcCalls), "main-libc-calls")
	b.ReportMetric(float64(res.Rows[len(res.Rows)-1].LibcCalls), "leaf-libc-calls")
}

// BenchmarkFigure9_TaintedFunctions regenerates Figure 9: sensitive
// functions found by taint analysis under ab then fuzzing (paper: 16→30).
func BenchmarkFigure9_TaintedFunctions(b *testing.B) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure9(15, []int{10, 30, 60, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Points[0].Functions), "ab-functions")
	b.ReportMetric(float64(res.Points[len(res.Points)-1].Functions), "fuzz-functions")
}

// BenchmarkTable2_VariantCreation regenerates Table 2: the mvx_start()
// latency breakdown on lighttpd plus the clone/fork baselines.
func BenchmarkTable2_VariantCreation(b *testing.B) {
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DupUS, "dup-us")
	b.ReportMetric(res.DataScanUS, "data-scan-us")
	b.ReportMetric(res.HeapScanUS, "heap-scan-us")
	b.ReportMetric(res.CloneUS, "clone-us")
	b.ReportMetric(res.ForkUS, "fork-us")
	b.ReportMetric(res.ForkInitUS, "fork-init-us")
}

// BenchmarkCPUCyclesSaved regenerates the Section 4.1 CPU experiment:
// protected-subtree share and sMVX CPU vs traditional MVX's 200%.
func BenchmarkCPUCyclesSaved(b *testing.B) {
	var res *experiments.CPUResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CPUCycles(25)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Nginx.SubtreePercent, "nginx-subtree-%")
	b.ReportMetric(res.Nginx.AnalyticPercent, "nginx-smvx-cpu-%")
	b.ReportMetric(res.Lighttpd.SubtreePercent, "lighttpd-subtree-%")
	b.ReportMetric(res.Lighttpd.AnalyticPercent, "lighttpd-smvx-cpu-%")
}

// BenchmarkMemorySaved regenerates the Section 4.1 memory experiment: RSS
// under sMVX vs two vanilla instances (paper: ~49% saved).
func BenchmarkMemorySaved(b *testing.B) {
	var res *experiments.MemResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Memory(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Nginx.SMVXKB), "nginx-smvx-KB")
	b.ReportMetric(float64(res.Nginx.TradKB), "nginx-2x-KB")
	b.ReportMetric(res.Nginx.SavedPercent, "nginx-saved-%")
	b.ReportMetric(res.Lighttpd.SavedPercent, "lighttpd-saved-%")
}

// BenchmarkCVEDetection regenerates the Section 4.2 security experiment:
// CVE-2013-2028 end to end.
func BenchmarkCVEDetection(b *testing.B) {
	var res *experiments.CVEResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CVE()
		if err != nil {
			b.Fatal(err)
		}
		if !res.VanillaPwned || !res.SMVXDetected || !res.FixedSurvives {
			b.Fatalf("security outcomes wrong: %+v", res)
		}
	}
	b.ReportMetric(boolMetric(res.VanillaPwned), "vanilla-pwned")
	b.ReportMetric(boolMetric(res.SMVXDetected), "smvx-detected")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationLockstepGranularity contrasts libc-granularity lockstep
// (sMVX) with syscall-granularity (ReMon) on the same nginx workload: the
// design choice behind the Figure 7 crossover.
func BenchmarkAblationLockstepGranularity(b *testing.B) {
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7(20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Nginx.SMVXOverhead*100, "libc-granularity-%")
	b.ReportMetric(res.Nginx.ReMonOverhead*100, "syscall-granularity-%")
}

// BenchmarkAblationPointerScan contrasts the strawman full .data/.bss scan
// with the static-hint-narrowed scan (Section 3.4's alias analysis).
func BenchmarkAblationPointerScan(b *testing.B) {
	var hinted, unhinted float64
	for i := 0; i < b.N; i++ {
		var err error
		hinted, unhinted, err = experiments.Table2WithHints()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unhinted, "full-scan-us")
	b.ReportMetric(hinted, "hinted-scan-us")
}

// BenchmarkAblationTrampoline measures the trampoline's stack pivot cost:
// the per-libc-call price of the MPK-safe call gate (Section 3.4).
func BenchmarkAblationTrampoline(b *testing.B) {
	run := func(disablePivot bool) Cycles {
		img := NewImage("abl", 0x400000).
			AddFunc("main", 64).
			AddFunc("loop", 128).
			AddBSS("g", 256).
			NeedLibc("gettimeofday", "malloc", "free").
			Build()
		prog := NewProgram(img)
		prog.MustDefine("loop", func(t *Thread, args []uint64) uint64 {
			g := t.Global("g")
			for i := 0; i < 200; i++ {
				t.Libc("gettimeofday", uint64(g), 0)
			}
			return 0
		})
		opts := []MonitorOption{WithSeed(1)}
		if disablePivot {
			opts = append(opts, WithoutSafeStack())
		}
		sys, err := NewSystem(NewKernel(1), prog, WithBootSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		sys.Protect(opts...)
		before := sys.Env.Wall.Cycles()
		if _, err := sys.RunProtected("loop"); err != nil {
			b.Fatal(err)
		}
		return sys.Env.Wall.Cycles() - before
	}
	var with, without Cycles
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(float64(with), "pivot-on-cycles")
	b.ReportMetric(float64(without), "pivot-off-cycles")
}

// BenchmarkAblationVariantReuse measures the Section 5 mitigation:
// persistent follower mappings refreshed off the critical path versus
// fresh creation per region, on per-request nginx protection.
func BenchmarkAblationVariantReuse(b *testing.B) {
	var fresh, reuse Cycles
	for i := 0; i < b.N; i++ {
		fresh = runNginxProtected(b, false)
		reuse = runNginxProtected(b, true)
	}
	b.ReportMetric(float64(fresh), "fresh-wall-cycles")
	b.ReportMetric(float64(reuse), "reuse-wall-cycles")
	if reuse >= fresh {
		b.Fatalf("reuse (%d) should undercut fresh creation (%d)", reuse, fresh)
	}
}

// BenchmarkAblationRegionChoice sweeps the protected root over nginx's call
// graph (the Figure 8 generalization): smaller regions, fewer monitored
// calls.
func BenchmarkAblationRegionChoice(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure8(40)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Fn == "main" || row.Fn == "ngx_http_process_request_line" || row.Fn == "ngx_http_header_filter" {
			b.ReportMetric(float64(row.LibcCalls), row.Fn)
		}
	}
}

// runNginxProtected serves a small ab workload with per-request protection
// and returns the wall cycles — the helper behind the reuse ablation.
func runNginxProtected(b *testing.B, reuse bool) Cycles {
	b.Helper()
	k := kernel.New(DefaultCosts(), 42)
	srv := nginx.NewServer(nginx.Config{
		Port: 8080, MaxRequests: 10, Protect: "ngx_http_process_request_line",
	})
	env, err := boot.NewEnv(k, srv.Program(), boot.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	k.FS().WriteFile("/var/www/index.html", experiments.Page4K)
	client := k.NewProcess(nil)

	opts := []MonitorOption{WithSeed(42)}
	if reuse {
		opts = append(opts, core.WithVariantReuse())
	}
	mon := core.New(env.Machine, env.LibC, opts...)
	srv.SetMVX(mon)

	th, err := env.MainThread()
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(th) }()
	res := workload.RunAB(client, 8080, "/index.html", 10)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	if res.Completed != 10 {
		b.Fatalf("served %d/10", res.Completed)
	}
	if alarms := mon.Alarms(); len(alarms) != 0 {
		b.Fatalf("alarms: %v", alarms)
	}
	return env.Wall.Cycles()
}
