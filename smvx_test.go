package smvx

import (
	"testing"
)

// buildDemo assembles a minimal protected application through the public
// API only.
func buildDemo(t *testing.T) *System {
	t.Helper()
	img := NewImage("demo", 0x400000).
		AddFunc("main", 128).
		AddFunc("handle_input", 256).
		AddData("g_secret", 8, nil).
		AddBSS("g_buf", 1024).
		NeedLibc("gettimeofday", "malloc", "free", "open", "write", "close").
		Build()
	prog := NewProgram(img)
	prog.MustDefine("handle_input", func(t *Thread, args []uint64) uint64 {
		g := t.Global("g_buf")
		t.Libc("gettimeofday", uint64(g), 0)
		p := t.Libc("malloc", 64)
		t.Store64(Addr(p), t.Load64(g))
		t.Libc("free", p)
		return t.Load64(g)
	})
	sys, err := NewSystem(NewKernel(1), prog, WithBootSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sys := buildDemo(t)
	sys.Protect(WithSeed(1))
	rep, err := sys.RunProtected("handle_input")
	if err != nil {
		t.Fatalf("RunProtected: %v", err)
	}
	if rep.Diverged {
		t.Fatalf("benign region diverged: %+v", rep)
	}
	if rep.Function != "handle_input" || rep.LibcCalls != 3 {
		t.Errorf("report = %+v", rep)
	}
	if len(sys.Alarms()) != 0 {
		t.Errorf("alarms = %v", sys.Alarms())
	}
}

func TestRunProtectedUnknownFunction(t *testing.T) {
	sys := buildDemo(t)
	if _, err := sys.RunProtected("nope"); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestUnprotectedSystemHasNoAlarms(t *testing.T) {
	sys := buildDemo(t)
	if sys.Alarms() != nil {
		t.Error("unprotected system should report nil alarms")
	}
}

func TestDivergenceSurfacesThroughFacade(t *testing.T) {
	img := NewImage("divapp", 0x400000).
		AddFunc("main", 64).
		AddFunc("evil", 128).
		AddBSS("g_buf", 256).
		NeedLibc("gettimeofday", "time").
		Build()
	prog := NewProgram(img)
	prog.MustDefine("evil", func(t *Thread, args []uint64) uint64 {
		g := t.Global("g_buf")
		if t.Bias() == 0 {
			t.Libc("gettimeofday", uint64(g), 0)
		} else {
			t.Libc("time", 0)
		}
		return 0
	})
	sys, err := NewSystem(NewKernel(2), prog, WithBootSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.Protect(WithSeed(2))
	rep, err := sys.RunProtected("evil")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged {
		t.Error("divergence not reported")
	}
	alarms := sys.Alarms()
	if len(alarms) == 0 || alarms[0].Reason != AlarmCallMismatch {
		t.Errorf("alarms = %v", alarms)
	}
}

func TestDefaultCostsExposed(t *testing.T) {
	if DefaultCosts().SyscallCost() == 0 {
		t.Error("cost table empty")
	}
}

func TestRepeatedProtectedRegions(t *testing.T) {
	sys := buildDemo(t)
	sys.Protect(WithSeed(3))
	for i := 0; i < 3; i++ {
		rep, err := sys.RunProtected("handle_input")
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if rep.Diverged {
			t.Fatalf("region %d diverged", i)
		}
	}
	if got := len(sys.Monitor.Reports()); got != 3 {
		t.Errorf("reports = %d", got)
	}
}
