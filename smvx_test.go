package smvx

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildDemo assembles a minimal protected application through the public
// API only.
func buildDemo(t *testing.T) *System {
	t.Helper()
	img := NewImage("demo", 0x400000).
		AddFunc("main", 128).
		AddFunc("handle_input", 256).
		AddData("g_secret", 8, nil).
		AddBSS("g_buf", 1024).
		NeedLibc("gettimeofday", "malloc", "free", "open", "write", "close").
		Build()
	prog := NewProgram(img)
	prog.MustDefine("handle_input", func(t *Thread, args []uint64) uint64 {
		g := t.Global("g_buf")
		t.Libc("gettimeofday", uint64(g), 0)
		p := t.Libc("malloc", 64)
		t.Store64(Addr(p), t.Load64(g))
		t.Libc("free", p)
		return t.Load64(g)
	})
	sys, err := NewSystem(NewKernel(1), prog, WithBootSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sys := buildDemo(t)
	sys.Protect(WithSeed(1))
	rep, err := sys.RunProtected("handle_input")
	if err != nil {
		t.Fatalf("RunProtected: %v", err)
	}
	if rep.Diverged {
		t.Fatalf("benign region diverged: %+v", rep)
	}
	if rep.Function != "handle_input" || rep.LibcCalls != 3 {
		t.Errorf("report = %+v", rep)
	}
	if len(sys.Alarms()) != 0 {
		t.Errorf("alarms = %v", sys.Alarms())
	}
}

func TestRunProtectedUnknownFunction(t *testing.T) {
	sys := buildDemo(t)
	if _, err := sys.RunProtected("nope"); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestUnprotectedSystemHasNoAlarms(t *testing.T) {
	sys := buildDemo(t)
	if sys.Alarms() != nil {
		t.Error("unprotected system should report nil alarms")
	}
}

func TestDivergenceSurfacesThroughFacade(t *testing.T) {
	img := NewImage("divapp", 0x400000).
		AddFunc("main", 64).
		AddFunc("evil", 128).
		AddBSS("g_buf", 256).
		NeedLibc("gettimeofday", "time").
		Build()
	prog := NewProgram(img)
	prog.MustDefine("evil", func(t *Thread, args []uint64) uint64 {
		g := t.Global("g_buf")
		if t.Bias() == 0 {
			t.Libc("gettimeofday", uint64(g), 0)
		} else {
			t.Libc("time", 0)
		}
		return 0
	})
	sys, err := NewSystem(NewKernel(2), prog, WithBootSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.Protect(WithSeed(2))
	rep, err := sys.RunProtected("evil")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged {
		t.Error("divergence not reported")
	}
	alarms := sys.Alarms()
	if len(alarms) == 0 || alarms[0].Reason != AlarmCallMismatch {
		t.Errorf("alarms = %v", alarms)
	}
}

func TestDefaultCostsExposed(t *testing.T) {
	if DefaultCosts().SyscallCost() == 0 {
		t.Error("cost table empty")
	}
}

func TestPipelinedModeThroughFacade(t *testing.T) {
	sys := buildDemo(t)
	sys.Protect(WithSeed(4), WithLockstepMode(LockstepPipelined), WithLagWindow(8))
	rep, err := sys.RunProtected("handle_input")
	if err != nil {
		t.Fatalf("RunProtected: %v", err)
	}
	if rep.Diverged {
		t.Fatalf("benign pipelined region diverged: %+v", rep)
	}
	if len(sys.Alarms()) != 0 {
		t.Errorf("alarms = %v", sys.Alarms())
	}
}

func TestEnumParsersRoundTrip(t *testing.T) {
	for _, p := range []DivergencePolicy{PolicyKillBoth, PolicyLeaderContinue, PolicyRestartFollower, PolicyRollback} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	for _, m := range []LockstepMode{LockstepStrict, LockstepPipelined} {
		got, err := ParseLockstepMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseLockstepMode(%q) = %v, %v", m, got, err)
		}
	}
	if SyncClassOf("gettimeofday") != SyncPipelined || SyncClassOf("write") != SyncBarrier {
		t.Error("SyncClassOf disagrees with the documented classes")
	}
}

// optionSurface parses a package directory (tests excluded) and returns the
// names that belong on the public facade: exported option constructors
// (With... returning Option) and exported constants of the enumerated
// configuration types.
func optionSurface(t *testing.T, dir string) []string {
	t.Helper()
	enumTypes := map[string]bool{
		"AlarmReason": true, "DivergencePolicy": true, "LockstepMode": true,
	}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() || !strings.HasPrefix(d.Name.Name, "With") {
					continue
				}
				if r := d.Type.Results; r != nil && len(r.List) == 1 {
					if id, ok := r.List[0].Type.(*ast.Ident); ok && id.Name == "Option" {
						names = append(names, d.Name.Name)
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.CONST {
					continue
				}
				// Within one const block, specs without an explicit type
				// inherit the previous spec's (the iota idiom).
				cur := ""
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Type != nil {
						cur = ""
						if id, ok := vs.Type.(*ast.Ident); ok {
							cur = id.Name
						}
					}
					if !enumTypes[cur] {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							names = append(names, n.Name)
						}
					}
				}
			}
		}
	}
	return names
}

// facadeRefs returns, per imported package name, the set of selector names
// smvx.go references (core.WithSeed -> refs["core"]["WithSeed"]).
func facadeRefs(t *testing.T) map[string]map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "smvx.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string]map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if refs[id.Name] == nil {
				refs[id.Name] = map[string]bool{}
			}
			refs[id.Name][sel.Sel.Name] = true
		}
		return true
	})
	return refs
}

// Every exported option constructor and enumerated configuration constant of
// internal/core and internal/boot must be re-exported (referenced) by the
// public facade — a new core/boot option without a smvx alias fails here, so
// the public surface cannot silently drift behind the internal one again.
func TestPublicSurfaceCoversInternalOptions(t *testing.T) {
	refs := facadeRefs(t)
	for _, pkg := range []struct{ dir, name string }{
		{"internal/core", "core"},
		{"internal/boot", "boot"},
	} {
		surface := optionSurface(t, pkg.dir)
		if len(surface) == 0 {
			t.Fatalf("no option surface found in %s (parser broken?)", pkg.dir)
		}
		for _, name := range surface {
			if !refs[pkg.name][name] {
				t.Errorf("%s.%s has no re-export in smvx.go", pkg.name, name)
			}
		}
	}
}

func TestRepeatedProtectedRegions(t *testing.T) {
	sys := buildDemo(t)
	sys.Protect(WithSeed(3))
	for i := 0; i < 3; i++ {
		rep, err := sys.RunProtected("handle_input")
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if rep.Diverged {
			t.Fatalf("region %d diverged", i)
		}
	}
	if got := len(sys.Monitor.Reports()); got != 3 {
		t.Errorf("reports = %d", got)
	}
}
